// Package server exposes stream-hull summaries over HTTP with a small
// JSON API — the shape of deployment the paper motivates (§1): many
// sources push points, the service holds only O(r)-size summaries per
// stream, and extremal queries (diameter, width, extent, separation,
// containment, overlap) are answered from the summaries at any time.
//
// Endpoints:
//
//	PUT    /v1/streams/{id}          create — spec JSON body, or
//	       ?algo=adaptive|uniform|exact|fanin&r=32&window=<n|dur> query params
//	DELETE /v1/streams/{id}                                    drop
//	GET    /v1/streams                                         list
//	GET    /v1/streams/{id}          detail: spec, n, sample size, durability,
//	                                 fan-in sources with epochs and push lag
//	POST   /v1/streams/{id}/points   {"points": [[x,y], ...]}  ingest
//	GET    /v1/streams/{id}/hull                               hull polygon
//	GET    /v1/streams/{id}/query?type=diameter|width|extent|circle&theta=rad
//	GET    /v1/pairs/query?a=id&b=id&type=distance|separable|overlap|contains
//	GET    /v1/streams/{id}/snapshot                           sample snapshot
//	POST   /v1/streams/{id}/snapshot                           restore from snapshot
//	POST   /v1/streams/{id}/snapshot?source=<name>&epoch=<n>   fan-in push
//	DELETE /v1/streams/{id}/sources/{source}                   drop a fan-in source
//
// Streams are spec-driven: a create request may carry a streamhull.Spec
// JSON document ({"kind": "windowed", "r": 32, "window": "10000"}) as
// its body, which can describe every summary kind — adaptive (with
// height-limit/fixed-budget/bounded-work options), uniform, exact,
// partial, windowed, grid-partitioned, and sharded (round-robin
// parallel-ingest fan-out over a nested inner spec). The legacy query
// parameters compile down to a Spec; create, list, detail and snapshot
// responses all report the stream's spec, so any stream can be
// recreated elsewhere from what the API returns.
//
// Reads are epoch-cached: each stream keeps a materialized read state
// (the folded hull plus memoized diameter/width/extent/circle answers)
// behind an atomic pointer, rebuilt only when the summary's mutation
// epoch moves, so steady-state hull and query requests are lock-free
// lookups that never touch the write path. In-memory streams also
// ingest outside the stream lock — summaries serialize internally, and
// a sharded stream spreads concurrent batches across shard locks — so
// parallel POSTs to the same stream scale with its shard count.
// Durable ingest still serializes per stream to keep WAL order equal to
// apply order.
//
// Pair answers (distance, separability, overlap, containment) are
// memoized on the two streams' epoch pair, so repeat pair queries
// between mutations are map lookups. A pair query touching an empty
// stream — never written, or a window whose points just expired — is a
// deliberate 409 with the offending ids in an "empty" array, never a
// fabricated [0,0] witness.
//
// The snapshot endpoint negotiates its encoding: with Accept (on GET)
// or Content-Type (on POST) set to application/octet-stream it speaks
// the compact binary snapshot format; otherwise JSON. Either way the
// snapshot embeds the stream's spec.
//
// Fan-in (continuous multi-node aggregation): a stream created with
// {"kind":"fanin","r":32} aggregates follower servers. Followers push
// periodic snapshot deltas with POST …/snapshot?source=<name>&epoch=<n>
// (see internal/fanin and hullserver's -push-to); the aggregate keeps
// one contribution per source, replaced wholesale by each accepted push
// and re-merged on read through the MergeSnapshots machinery. Pushes
// whose epoch is older than the source's last accepted one get a 409,
// so a follower that lagged or restarted re-syncs with its next
// (higher-epoch) push and its stale contribution vanishes. Aggregates
// reject direct point ingest (409) and hold soft state: with DataDir
// set their WAL persists only the spec, and a restarted aggregator
// re-fills from the followers' next pushes.
//
// A windowed stream covers only the last count points or the last
// duration of wall time. Time-windowed streams are swept in the
// background so idle streams age out too.
//
// Streams are auto-created on first ingest with Config.DefaultSpec
// when not explicitly configured.
//
// With Config.DataDir set, every stream is durable regardless of kind:
// ingested batches are appended to a per-stream write-ahead log before
// being applied, the stream's spec is persisted in the WAL meta,
// summaries are periodically checkpointed (which compacts the log —
// see durable.go for which kinds support it), and New recovers every
// stream from disk. Point batches are atomic: the whole batch is
// validated before any point is applied, so a 400 response means the
// stream is unchanged.
//
// Multi-tenant service layer: every API route passes through the same
// middleware chain — bearer-token authentication (Config.Auth; the
// default "none" provider keeps today's open, un-namespaced behavior),
// a per-tenant token-bucket rate limit (429 + Retry-After), and a role
// check (read for queries, write for stream lifecycle and ingest, push
// for fan-in source pushes). Authenticated tenants get namespaced
// streams: tenant "acme"'s stream "clicks" is keyed "acme/clicks"
// internally (and on disk), so two tenants' same-named streams never
// collide and a caller can only ever see or touch its own namespace.
// Config.Quotas additionally caps each tenant's live stream count and
// resident ingest bytes.
//
// Observability plane (no auth required — probes and scrapers carry no
// tenant credentials):
//
//	GET /metrics   Prometheus text format: request latency histograms
//	               per endpoint, ingest points per tenant, fan-in push
//	               accept/reject counters, query/pair cache hit ratios,
//	               WAL fsync lag, resident streams per tenant, fan-in
//	               source staleness
//	GET /healthz   liveness (200 while the process serves)
//	GET /readyz    readiness (503 until recovery finished, and again
//	               after Close begins)
//
// Errors are a uniform JSON envelope ({"error": "...", "code": "..."}):
// 404 not_found, 400 bad_request, 401 unauthenticated, 403 forbidden,
// 409 conflict (stale_epoch / empty_streams for their special cases),
// 413 too_large, 429 rate_limited, 507 stream_limit or quota_streams,
// and quota_bytes when a tenant's byte quota rejects an ingest.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/auth"
	"github.com/streamgeom/streamhull/internal/fanin"
	"github.com/streamgeom/streamhull/internal/store"
	"github.com/streamgeom/streamhull/internal/telemetry"
	"github.com/streamgeom/streamhull/internal/trace"
	"github.com/streamgeom/streamhull/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// DefaultR is the sample parameter used for auto-created streams.
	// Zero selects 32.
	DefaultR int
	// DefaultSpec, when non-empty, is the spec JSON used for
	// auto-created streams instead of an adaptive summary with DefaultR.
	DefaultSpec string
	// MaxStreams bounds the number of live streams (0 = 1024).
	MaxStreams int
	// MaxBatch bounds the number of points per ingest request (0 = 65536).
	MaxBatch int
	// MaxBodyBytes bounds the size of ingest request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// SweepInterval is how often the background sweeper expires idle
	// time-windowed streams (0 = 2s). The sweeper starts lazily with the
	// first windowed stream; call Close to stop it.
	SweepInterval time.Duration

	// DataDir, when non-empty, makes lifetime streams durable: every
	// ingest is logged through the storage engine under this directory
	// before it is applied, and New recovers all streams found there.
	DataDir string
	// StoreBackend selects the storage engine for DataDir: "fswal"
	// (default; the original one-directory-per-stream WAL layout) or
	// "muxwal" (one shared group-commit WAL multiplexing every stream;
	// built for very many mostly-idle streams). See internal/store and
	// docs/STORAGE.md. A directory written by one backend refuses to
	// open under the other.
	StoreBackend string
	// Store injects a pre-opened storage engine (tests and embedders);
	// it takes precedence over DataDir/StoreBackend, and the server
	// closes it on Close.
	Store store.Store
	// MaxResident caps how many streams keep a live summary resident in
	// memory (0 = all of them). Requires durable storage: beyond the
	// cap, the least-recently-touched streams are evicted to their O(r)
	// checkpoints and rehydrated transparently on their next touch, so
	// the server's memory is O(MaxResident · r) no matter how many
	// streams exist.
	MaxResident int
	// AsyncRecovery makes New return before startup recovery finishes:
	// the server immediately answers /healthz and /readyz (the latter
	// 503 with {"status":"starting","recovered":k,"total":n} progress)
	// while streams are restored in the background, and API routes
	// answer 503 in the uniform error envelope (code "not_ready", with
	// the same progress numbers) until recovery completes. Without it
	// New blocks until every stream is recovered, failing startup on
	// any error.
	AsyncRecovery bool
	// Sync is the WAL fsync policy (zero value = wal.SyncInterval).
	Sync wal.SyncPolicy
	// FsyncInterval is the timer period for wal.SyncInterval (0 = 50ms).
	FsyncInterval time.Duration
	// CheckpointEvery is how many ingested points a durable stream
	// accumulates before its snapshot is checkpointed and the log
	// compacted (0 = 65536).
	CheckpointEvery int
	// SegmentBytes caps WAL segment size (0 = 4 MiB).
	SegmentBytes int64
	// Logger receives structured operational logs (recovery results,
	// checkpoint failures, slow traces) with tenant/stream/trace-id
	// fields attached. Nil discards them.
	Logger *slog.Logger
	// Tracer records per-request traces: one root span per API request
	// with stage-level child spans on the hot paths (auth, rate limit,
	// stream-lock wait, prefilter, insert, WAL append, fsync,
	// checkpoint, cache materialize), continuing an incoming W3C
	// traceparent so a follower push and its aggregator handling are one
	// distributed trace. Nil disables tracing at near-zero cost.
	Tracer *trace.Tracer

	// Auth authenticates bearer tokens (nil = auth.None: every caller,
	// anonymous included, is the root tenant with all roles — exactly
	// the pre-tenant behavior).
	Auth auth.Provider
	// Quotas caps per-tenant stream count, resident ingest bytes and
	// request rate (zero value = unlimited).
	Quotas auth.Quotas
	// Metrics is the registry the server instruments itself on (nil =
	// a fresh private registry). Share one registry to merge server
	// metrics with process-level instruments (the fan-in pusher's) on a
	// single /metrics page.
	Metrics *telemetry.Registry
	// DisableObservability skips registering the /metrics, /healthz and
	// /readyz routes (instrumentation still runs; the routes are just
	// not exposed on this handler).
	DisableObservability bool

	// PullAfter, when positive, enables aggregator-initiated pulls: any
	// fan-in source whose last accepted push is older than this, and
	// which advertised a pull-back address on its pushes (?addr=), has
	// its snapshot fetched by the aggregator itself and applied as a
	// wall-clock-stamped full push. See pull.go.
	PullAfter time.Duration
	// PullInterval is the pull loop's scan period (0 = PullAfter/2,
	// floored at 100ms).
	PullInterval time.Duration
	// PullToken is the bearer token pulls present to followers.
	PullToken string
	// PullClient overrides the HTTP client used for pulls (nil = a
	// 10-second-timeout default).
	PullClient *http.Client
}

// Server is an HTTP handler managing named stream summaries.
type Server struct {
	cfg         Config
	defaultSpec streamhull.Spec // auto-create spec, from DefaultSpec/DefaultR
	authp       auth.Provider
	ledger      *auth.Ledger
	reg         *telemetry.Registry
	logger      *slog.Logger
	tracer      *trace.Tracer
	met         metrics
	health      telemetry.Health
	mu          sync.RWMutex
	streams     map[string]*stream // keyed by tenant-qualified id
	mux         *http.ServeMux
	pairs       pairCache // memoized pair-query answers (see paircache.go)
	sweepOnce   sync.Once
	closeOnce   sync.Once
	sweepStop   chan struct{}
	closeErr    error
	puller      *puller // aggregator-initiated pulls; nil unless PullAfter > 0

	// store is the durable storage engine (nil = fully in-memory).
	store store.Store
	// resident tracks evictable warm streams for the cold tier's LRU
	// scan (see coldtier.go); resMu is a leaf lock, safe to take while
	// holding s.mu or any st.mu.
	resMu    sync.Mutex
	resident map[string]*stream
	// recoveryDone closes when startup recovery has finished (or was
	// never needed); Close waits on it so an async recovery and the
	// shutdown checkpoint pass never interleave.
	recoveryDone chan struct{}
}

type stream struct {
	spec   streamhull.Spec // self-description; persisted in the WAL meta
	tenant string          // owning tenant ("" = root/open namespace)

	mu        sync.Mutex         // orders WAL appends with inserts; guards sum swaps
	sum       streamhull.Summary // nil while the stream is parked cold
	app       store.Appender     // nil for in-memory streams and cold streams
	sinceCkpt int                // points since the last checkpoint
	bytes     int64              // resident ingest bytes charged to the tenant quota

	// coldN/coldSample preserve the listing counters while the stream
	// is cold, so list/detail responses never force a rehydration.
	coldN      int
	coldSample int
	// lastTouch is the cold tier's LRU clock (unix nanos of the last
	// request that touched this stream), written lock-free on reads.
	lastTouch atomic.Int64

	// cache is the stream's epoch-validated read state: hull and query
	// answers are materialized once per summary epoch and served
	// lock-free. Swapped (not mutated) whenever the live summary is
	// swapped, so it always tracks the summary reads should see.
	cache atomic.Pointer[streamhull.QueryCache]
}

// summary returns the stream's live summary; checkpoints may swap it,
// so handlers must not cache st.sum across requests.
func (st *stream) summary() streamhull.Summary {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sum
}

// setSummary installs a (new) live summary and the read cache bound to
// it. Callers hold st.mu when the stream is already shared.
func (st *stream) setSummary(sum streamhull.Summary) {
	st.sum = sum
	st.cache.Store(streamhull.NewQueryCache(sum))
}

// queries returns the stream's epoch-cached read state.
func (st *stream) queries() *streamhull.QueryCache { return st.cache.Load() }

// errStreamLimit distinguishes capacity exhaustion from unknown-stream
// lookups so handlers can return 507 instead of 404.
var errStreamLimit = errors.New("stream limit reached")

// errStorage marks server-side durability failures (500, not 400).
var errStorage = errors.New("stream storage")

// New returns a ready-to-serve Server. With Config.DataDir set it
// first recovers every durable stream found on disk; a stream whose
// state cannot be restored fails startup rather than silently serving
// partial data.
func New(cfg Config) (*Server, error) {
	if cfg.DefaultR == 0 {
		cfg.DefaultR = 32
	}
	if cfg.MaxStreams == 0 {
		cfg.MaxStreams = 1024
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 65536
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 2 * time.Second
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 65536
	}
	if cfg.Auth == nil {
		cfg.Auth = auth.None{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg: cfg, streams: make(map[string]*stream), mux: http.NewServeMux(),
		sweepStop:    make(chan struct{}),
		authp:        cfg.Auth,
		ledger:       auth.NewLedger(cfg.Quotas, nil),
		reg:          cfg.Metrics,
		logger:       cfg.Logger,
		tracer:       cfg.Tracer,
		resident:     make(map[string]*stream),
		recoveryDone: make(chan struct{}),
	}
	s.initMetrics(s.reg)
	if cfg.DefaultSpec != "" {
		spec, err := streamhull.ParseSpec(cfg.DefaultSpec)
		if err != nil {
			return nil, fmt.Errorf("default spec: %w", err)
		}
		s.defaultSpec = spec
	} else {
		spec, err := streamhull.SpecFor("adaptive", cfg.DefaultR, "")
		if err != nil {
			return nil, fmt.Errorf("default r: %w", err)
		}
		s.defaultSpec = spec
	}
	switch {
	case cfg.Store != nil:
		s.store = cfg.Store
	case cfg.DataDir != "" || cfg.StoreBackend == "memory":
		stor, err := store.Open(cfg.StoreBackend, cfg.DataDir, store.Options{
			SegmentBytes: cfg.SegmentBytes,
			Sync:         cfg.Sync,
			Interval:     cfg.FsyncInterval,
			Logger:       cfg.Logger,
		})
		if err != nil {
			return nil, err
		}
		s.store = stor
	case cfg.StoreBackend != "":
		return nil, fmt.Errorf("store backend %q requires DataDir", cfg.StoreBackend)
	}
	if cfg.MaxResident > 0 && s.store == nil {
		return nil, errors.New("MaxResident requires durable storage (DataDir or Store)")
	}
	// Role requirements per route: reads need read, lifecycle and
	// ingest need write, fan-in pushes need push. Create is special-
	// cased in its handler (a push-only follower token may create the
	// fan-in aggregate it pushes into, nothing else).
	s.route("PUT /v1/streams/{id}", "create", nil, s.handleCreate)
	s.route("DELETE /v1/streams/{id}", "delete", needWrite, s.handleDelete)
	s.route("GET /v1/streams", "list", needRead, s.handleList)
	s.route("GET /v1/streams/{id}", "detail", needRead, s.handleDetail)
	s.route("POST /v1/streams/{id}/points", "points", needWrite, s.handlePoints)
	s.route("GET /v1/streams/{id}/hull", "hull", needRead, s.handleHull)
	s.route("GET /v1/streams/{id}/query", "query", needRead, s.handleQuery)
	s.route("GET /v1/streams/{id}/snapshot", "snapshot_get", needRead, s.handleSnapshot)
	s.route("POST /v1/streams/{id}/snapshot", "snapshot_post", needRestoreRole, s.handleRestore)
	s.route("DELETE /v1/streams/{id}/sources/{source}", "drop_source", needWrite, s.handleDropSource)
	s.route("GET /v1/pairs/query", "pair_query", needRead, s.handlePairQuery)
	// The debug plane (trace ring, pprof) exposes request internals and
	// profiling data, so it is gated like the write routes — admin
	// tokens only under an authenticating provider. DebugHandler serves
	// the same routes ungated for a localhost-only listener.
	s.registerDebugRoutes()
	if !cfg.DisableObservability {
		s.registerObservabilityRoutes()
	}
	if s.store == nil {
		close(s.recoveryDone)
		s.health.SetReady(true)
		s.startPuller()
		return s, nil
	}
	if cfg.AsyncRecovery {
		// Serve immediately: /readyz reports recovery progress, API
		// routes answer 503 "starting" until the background pass ends.
		// On a recovery failure the server stays unready forever (and
		// logs why) rather than serving partial data.
		go func() {
			defer close(s.recoveryDone)
			if err := s.recoverStreams(); err != nil {
				s.logger.Error("recovery failed; server stays unready", "err", err)
				return
			}
			s.health.SetReady(true)
		}()
		s.startPuller()
		return s, nil
	}
	err := s.recoverStreams()
	close(s.recoveryDone)
	if err != nil {
		_ = s.store.Close()
		return nil, err
	}
	s.health.SetReady(true)
	s.startPuller()
	return s, nil
}

// startPuller launches the aggregator-initiated pull loop when
// configured; it stops with the sweeper on Close.
func (s *Server) startPuller() {
	if s.cfg.PullAfter <= 0 {
		return
	}
	s.puller = newPuller(s)
	go s.puller.run()
}

// qualifyID maps a tenant-local stream id to its internal map (and
// on-disk) key. The root tenant "" keeps the bare id, so open-provider
// deployments see the historical id space unchanged; other tenants get
// a "tenant/" prefix ('/' cannot appear in a tenant name, so the split
// is unambiguous, and the WAL's directory encoding escapes it).
func qualifyID(tenant, id string) string {
	if tenant == "" {
		return id
	}
	return tenant + "/" + id
}

// splitTenant inverts qualifyID.
func splitTenant(key string) (tenant, id string) {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i], key[i+1:]
	}
	return "", key
}

// bytesPerPoint is the quota charge per ingested point (two float64
// coordinates) — the resident-bytes accounting unit for
// Quotas.MaxBytes.
const bytesPerPoint = 16

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the background expiry sweeper, seals a final checkpoint
// for every checkpointable stream with un-checkpointed ingest (so a
// routine restart recovers instantly from O(r) state — and a
// time-windowed stream's bucket timestamps survive instead of the log
// tail being re-stamped at recovery), then flushes and closes every
// durable stream's log; after it returns, all acknowledged ingests are
// on disk. The handler itself remains usable for reads.
func (s *Server) Close() error {
	s.sweepOnce.Do(func() {}) // ensure a later windowed create cannot start it
	s.closeOnce.Do(func() {
		s.health.SetReady(false)
		close(s.sweepStop)
		// An async recovery still in flight owns stream state; let it
		// finish (or fail) before the shutdown checkpoint pass.
		<-s.recoveryDone
		s.mu.RLock()
		for id, st := range s.streams {
			st.mu.Lock()
			if st.app != nil {
				if st.sinceCkpt > 0 {
					s.checkpointLocked(id, st)
				}
				if err := st.app.Close(); err != nil && s.closeErr == nil {
					s.closeErr = fmt.Errorf("stream %q: %w", id, err)
				}
			}
			st.mu.Unlock()
		}
		s.mu.RUnlock()
		if s.store != nil {
			if err := s.store.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// startSweeper launches the background expiry loop (once, lazily, when
// the first windowed stream appears).
func (s *Server) startSweeper() {
	s.sweepOnce.Do(func() {
		go func() {
			t := time.NewTicker(s.cfg.SweepInterval)
			defer t.Stop()
			for {
				select {
				case <-s.sweepStop:
					return
				case <-t.C:
					s.sweep()
				}
			}
		}()
	})
}

// sweep expires every time-windowed stream once (count windows expire
// on insert and need no sweeping).
func (s *Server) sweep() {
	s.mu.RLock()
	whs := make([]*streamhull.WindowedHull, 0, len(s.streams))
	for _, st := range s.streams {
		if wh, ok := st.summary().(*streamhull.WindowedHull); ok && wh.ByTime() {
			whs = append(whs, wh)
		}
	}
	s.mu.RUnlock()
	for _, wh := range whs {
		wh.Expire()
	}
}

// errorBody is the uniform error envelope every handler emits: a
// human-readable message plus a stable machine-readable code, so
// clients branch on code and log error without parsing either.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// Empty lists the offending stream ids for code "empty_streams"
	// (pair queries touching point-less streams).
	Empty []string `json:"empty,omitempty"`
	// AckedEpoch carries, for code "resync_required", the epoch the
	// aggregate actually holds for the rejected source — the base a
	// follower would have to build on (in practice it just re-sends a
	// full snapshot).
	AckedEpoch uint64 `json:"acked_epoch,omitempty"`
	// Recovery reports, for code "not_ready", startup recovery
	// progress: streams replayed so far out of the total discovered —
	// the same numbers /readyz serves.
	Recovery *recoveryProgress `json:"recovery,omitempty"`
}

// recoveryProgress is errorBody.Recovery's payload.
type recoveryProgress struct {
	Recovered int `json:"recovered"`
	Total     int `json:"total"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// codeForStatus is the default machine-readable code per status; paths
// with a more specific cause use writeErrCode instead.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnauthorized:
		return "unauthenticated"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusNotAcceptable:
		return "not_acceptable"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusInsufficientStorage:
		return "stream_limit"
	default:
		return "internal"
	}
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrCode(w, status, codeForStatus(status), format, args...)
}

func writeErrCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeStreamErr maps a stream-creation or quota error to its status
// and code: capacity → 507 (server-wide stream_limit or per-tenant
// quota_streams), byte quota → 413 quota_bytes, rate → 429, storage
// trouble → 500, anything else (duplicate id on create/restore, bad
// config on ingest) → fallback.
func writeStreamErr(w http.ResponseWriter, err error, fallback int) {
	switch {
	case errors.Is(err, errStreamLimit):
		writeErr(w, http.StatusInsufficientStorage, "%v", err)
	case errors.Is(err, auth.ErrStreamQuota):
		writeErrCode(w, http.StatusInsufficientStorage, "quota_streams", "%v", err)
	case errors.Is(err, auth.ErrByteQuota):
		writeErrCode(w, http.StatusRequestEntityTooLarge, "quota_bytes", "%v", err)
	case errors.Is(err, errStorage):
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		writeErr(w, fallback, "%v", err)
	}
}

// specFromRequest compiles a create request down to a Spec: a non-empty
// body must be a spec JSON document (the v2 way, able to describe every
// summary kind); otherwise the legacy algo/r/window query parameters
// are compiled through streamhull.SpecFor. An oversized body surfaces
// as *http.MaxBytesError for the caller's 413 mapping.
func (s *Server) specFromRequest(w http.ResponseWriter, req *http.Request) (streamhull.Spec, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return streamhull.Spec{}, fmt.Errorf("reading body: %w", err)
	}
	if len(bytes.TrimSpace(body)) > 0 {
		return streamhull.ParseSpec(string(body))
	}
	algo := req.URL.Query().Get("algo")
	window := req.URL.Query().Get("window")
	r := s.cfg.DefaultR
	if rs := req.URL.Query().Get("r"); rs != "" {
		v, err := strconv.Atoi(rs)
		if err != nil {
			return streamhull.Spec{}, fmt.Errorf("invalid r: %v", err)
		}
		r = v
	}
	return streamhull.SpecFor(algo, r, window)
}

// addStream creates a stream under the server lock, opening its durable
// storage when configured. Callers pass the already-built summary; the
// stream's stored spec is the summary's own self-description.
//
// checkpoint, when non-nil, is an initial checkpoint payload sealed into
// the fresh log BEFORE the stream becomes visible (snapshot restores use
// it so the restored state survives a crash that precedes the first
// regular checkpoint). Sealing it here, not after publication, matters:
// wal.Checkpoint compacts the log, so a checkpoint written after a
// concurrent ingest had already appended to the log would silently drop
// that batch from recovery.
func (s *Server) addStream(tenant, id string, sum streamhull.Summary, checkpoint []byte) (*stream, error) {
	st, err := s.addStreamLocked(tenant, id, sum, checkpoint)
	if err != nil {
		return nil, err
	}
	// The new stream joined the warm set; evict past the cap outside
	// the server lock.
	s.enforceCap(nil)
	return st, nil
}

func (s *Server) addStreamLocked(tenant, id string, sum streamhull.Summary, checkpoint []byte) (*stream, error) {
	spec := sum.Spec()
	key := qualifyID(tenant, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.streams[key]; exists {
		return nil, fmt.Errorf("stream %q already exists", id)
	}
	if len(s.streams) >= s.cfg.MaxStreams {
		return nil, fmt.Errorf("%w (%d)", errStreamLimit, s.cfg.MaxStreams)
	}
	if err := s.ledger.ReserveStream(tenant); err != nil {
		return nil, err
	}
	st := &stream{spec: spec, tenant: tenant}
	st.setSummary(sum)
	if s.store != nil {
		app, err := s.store.Create(key, spec)
		if err != nil {
			s.ledger.ReleaseStream(tenant, 0)
			return nil, fmt.Errorf("%w: %v", errStorage, err)
		}
		if checkpoint != nil {
			if err := app.Checkpoint(checkpoint); err != nil {
				s.logger.Error("wal: persisting restored snapshot failed",
					"stream", key, "tenant", tenant, "err", err)
			}
		}
		st.app = app
	}
	s.streams[key] = st
	s.admit(key, st)
	s.touch(st)
	return st, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	ident := identityFrom(req)
	spec, err := s.specFromRequest(w, req)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Creating a stream is a write — except that a push-only follower
	// token may create the fan-in aggregate its pushes land in (the
	// Pusher's first-contact EnsureAggregate), and nothing else.
	allowed := ident.Roles.Has(auth.RoleWrite) ||
		(spec.Kind == streamhull.KindFanIn && ident.Roles.Has(auth.RolePush))
	if !s.requireRole(w, ident, auth.RoleWrite, allowed) {
		return
	}
	sum, err := streamhull.New(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := s.addStream(ident.Tenant, id, sum, nil); err != nil {
		writeStreamErr(w, err, http.StatusConflict)
		return
	}
	// Only time windows age out between inserts and need the background
	// sweeper; count windows expire on insert.
	if wh, ok := sum.(*streamhull.WindowedHull); ok && wh.ByTime() {
		s.startSweeper()
	}
	writeJSON(w, http.StatusCreated, createResponse(id, sum.Spec()))
}

// createResponse reports a created stream: the spec plus the legacy
// algo/r/window head fields.
func createResponse(id string, spec streamhull.Spec) map[string]any {
	resp := map[string]any{"id": id, "spec": spec, "algo": string(spec.Kind), "r": spec.R}
	if spec.Window != "" {
		resp["window"] = spec.Window
	}
	return resp
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	ident := identityFrom(req)
	key := qualifyID(ident.Tenant, id)
	s.mu.Lock()
	st, ok := s.streams[key]
	if ok {
		delete(s.streams, key)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %q", id)
		return
	}
	s.dropResident(key)
	st.mu.Lock()
	s.dropStorage(key, st)
	bytes := st.bytes
	st.mu.Unlock()
	// Return the stream slot and its resident bytes to the tenant quota.
	s.ledger.ReleaseStream(st.tenant, bytes)
	// The dead stream's read cache may still key memoized pair answers;
	// purge them so it (and its summary) can be collected.
	s.pairs.purge(st.cache.Load())
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

type streamInfo struct {
	ID          string           `json:"id"`
	Spec        *streamhull.Spec `json:"spec,omitempty"`
	Algo        string           `json:"algo"`
	R           int              `json:"r"`
	N           int              `json:"n"`
	SampleSize  int              `json:"sample_size"`
	Window      string           `json:"window,omitempty"`
	WindowCount int              `json:"window_count,omitempty"`
	Durable     bool             `json:"durable,omitempty"`
	// Cold marks a stream currently parked in the cold tier (its
	// summary evicted to its checkpoint; any touch rehydrates it).
	Cold bool `json:"cold,omitempty"`
	// Sources lists a fan-in aggregate's contributors (detail responses
	// only; the list endpoint stays compact).
	Sources []sourceInfo `json:"sources,omitempty"`
}

// sourceInfo is one fan-in contributor in a detail response.
type sourceInfo struct {
	Source       string `json:"source"`
	Epoch        uint64 `json:"epoch"`
	N            int    `json:"n"`
	SamplePoints int    `json:"sample_points"`
	// LagMillis is how long ago the source's last accepted push landed —
	// the staleness an operator watches to decide a source needs a drop
	// or a re-sync.
	LagMillis int64 `json:"lag_ms"`
	// Addr is the source's advertised pull-back URL (empty when the
	// source never advertised one, and then the aggregator cannot pull).
	Addr string `json:"addr,omitempty"`
	// Pulls counts aggregator-initiated pulls applied for this source;
	// LastPullMillis is how long ago the last one landed. Both are
	// omitted until the first pull.
	Pulls          uint64 `json:"pulls,omitempty"`
	LastPullMillis int64  `json:"last_pull_ms,omitempty"`
}

// infoFor captures one stream's listing entry. Cold streams report the
// counters preserved at eviction time — listing never rehydrates.
func infoFor(id string, st *stream) streamInfo {
	st.mu.Lock()
	sum := st.sum
	durable := st.app != nil || sum == nil
	n, sampleSize := st.coldN, st.coldSample
	st.mu.Unlock()
	if sum != nil {
		n, sampleSize = sum.N(), sum.SampleSize()
	}
	spec := st.spec
	info := streamInfo{
		ID: id, Spec: &spec, Algo: string(spec.Kind), R: spec.R,
		N: n, SampleSize: sampleSize,
		Window: spec.Window, Durable: durable, Cold: sum == nil,
	}
	if wh, ok := sum.(*streamhull.WindowedHull); ok {
		info.WindowCount = wh.WindowCount()
	}
	return info
}

// handleList reports the caller's streams — a tenant sees only its own
// namespace, with the internal tenant prefix stripped, so ids round-trip
// through every other endpoint unchanged.
//
// With ?limit=N the listing is paginated: streams come in stable id
// order, at most N per page, and a "next_cursor" field carries the last
// id of the page when more remain — pass it back as ?cursor= to resume
// after it. Ids are strictly greater than the cursor, so a stream
// created or deleted between pages can never repeat or shift an entry
// the caller already saw. Without parameters the response is the full
// unpaginated listing, exactly as before.
func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	ident := identityFrom(req)
	q := req.URL.Query()
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, "limit must be a positive integer, got %q", ls)
			return
		}
		limit = v
	}
	cursor := q.Get("cursor")
	type entry struct {
		id string
		st *stream
	}
	s.mu.RLock()
	entries := make([]entry, 0, len(s.streams))
	for key, st := range s.streams {
		tenant, id := splitTenant(key)
		if tenant != ident.Tenant || (cursor != "" && id <= cursor) {
			continue
		}
		entries = append(entries, entry{id: id, st: st})
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	next := ""
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
		next = entries[limit-1].id
	}
	infos := make([]streamInfo, len(entries))
	for i, e := range entries {
		infos[i] = infoFor(e.id, e.st)
	}
	resp := map[string]any{"streams": infos}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDetail reports one stream: its spec (enough to recreate it
// anywhere), counters and durability status. Fan-in aggregates
// additionally list their sources with per-source epochs and push lag.
func (s *Server) handleDetail(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	ident := identityFrom(req)
	s.mu.RLock()
	st, ok := s.streams[qualifyID(ident.Tenant, id)]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %q", id)
		return
	}
	info := infoFor(id, st)
	if agg, ok := st.summary().(*streamhull.FanInHull); ok {
		now := time.Now()
		srcs := agg.Sources()
		info.Sources = make([]sourceInfo, len(srcs))
		key := qualifyID(ident.Tenant, id)
		for i, src := range srcs {
			si := sourceInfo{
				Source: src.Name, Epoch: src.Epoch, N: src.N,
				SamplePoints: src.SamplePoints,
				LagMillis:    now.Sub(src.LastPush).Milliseconds(),
				Addr:         src.Addr,
			}
			if s.puller != nil {
				if pulls, last := s.puller.sourcePulls(key, src.Name); pulls > 0 {
					si.Pulls = pulls
					si.LastPullMillis = now.Sub(last).Milliseconds()
				}
			}
			info.Sources[i] = si
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// get returns the tenant's stream, auto-creating it for ingest when
// allowed (the auto-created stream lands in — and counts against — the
// caller's namespace and quota).
func (s *Server) get(tenant, id string, autocreate bool) (*stream, error) {
	key := qualifyID(tenant, id)
	s.mu.RLock()
	st, ok := s.streams[key]
	s.mu.RUnlock()
	if ok {
		return st, nil
	}
	if !autocreate {
		return nil, fmt.Errorf("no stream %q", id)
	}
	sum, err := streamhull.New(s.defaultSpec)
	if err != nil {
		return nil, err
	}
	st, err = s.addStream(tenant, id, sum, nil)
	if err == nil {
		if wh, ok := sum.(*streamhull.WindowedHull); ok && wh.ByTime() {
			s.startSweeper()
		}
		return st, nil
	}
	// Lost a create race: the stream exists now.
	s.mu.RLock()
	st, ok = s.streams[key]
	s.mu.RUnlock()
	if ok {
		return st, nil
	}
	return nil, err
}

type pointsBody struct {
	Points [][2]float64 `json:"points"`
}

func (s *Server) handlePoints(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	var body pointsBody
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(body.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	if len(body.Points) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d",
			len(body.Points), s.cfg.MaxBatch)
		return
	}
	// Validate the whole batch before touching the stream, so a 400
	// response implies nothing was applied.
	pts := make([]geom.Point, len(body.Points))
	for i, xy := range body.Points {
		p := geom.Pt(xy[0], xy[1])
		if !p.IsFinite() {
			writeErr(w, http.StatusBadRequest, "point %d: non-finite coordinates %v", i, xy)
			return
		}
		pts[i] = p
	}
	// With a fan-in default spec, a point POST to a missing stream would
	// auto-create an aggregate only to reject the batch below — don't
	// leave that orphan (or its durable directory) behind.
	ident := identityFrom(req)
	autocreate := s.defaultSpec.Kind != streamhull.KindFanIn
	st, err := s.get(ident.Tenant, id, autocreate)
	if err != nil {
		if !autocreate {
			writeErr(w, http.StatusConflict,
				"default stream kind is a fan-in aggregate; push snapshots to /v1/streams/%s/snapshot?source=<name>&epoch=<n> instead", id)
			return
		}
		writeStreamErr(w, err, http.StatusBadRequest)
		return
	}
	// Fan-in aggregates are fed by snapshot pushes, not point ingest;
	// reject before the stream lock (and, for durable streams, before a
	// batch that can never apply reaches the WAL).
	if st.spec.Kind == streamhull.KindFanIn {
		writeErr(w, http.StatusConflict,
			"stream %q is a fan-in aggregate; push snapshots to /v1/streams/%s/snapshot?source=<name>&epoch=<n> instead",
			id, id)
		return
	}
	// Charge the batch against the tenant's byte quota before any state
	// is touched; failed ingests below refund it.
	charge := int64(len(pts)) * bytesPerPoint
	if err := s.ledger.ReserveBytes(ident.Tenant, charge); err != nil {
		writeStreamErr(w, err, http.StatusRequestEntityTooLarge)
		return
	}
	key := qualifyID(ident.Tenant, id)
	// Stage spans for the ingest hot path. A nil span (tracing off or
	// unsampled) skips every clock read, so the untraced path stays the
	// code that ran before tracing existed.
	sp := trace.FromContext(req.Context())
	sp.SetAttr("stream", id)
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	s.touch(st)
	st.mu.Lock()
	if sp != nil {
		sp.ObserveStage("lock_wait", time.Since(t0))
	}
	if s.store == nil {
		// In-memory streams need no WAL ordering, so ingest runs outside
		// the stream lock: summaries serialize internally, and a sharded
		// summary deals concurrent batches across shard locks — parallel
		// POSTs to one stream scale with its fan-out instead of queueing
		// on st.mu.
		st.bytes += charge
		sum := st.sum
		st.mu.Unlock()
		if _, err := insertBatchTraced(sum, pts, sp); err != nil {
			// Unreachable after validation above; fail loudly if a summary
			// grows new failure modes.
			st.mu.Lock()
			st.bytes -= charge
			st.mu.Unlock()
			s.ledger.ReleaseBytes(ident.Tenant, charge)
			writeErr(w, http.StatusInternalServerError, "applying batch: %v", err)
			return
		}
		s.met.ingestPoints.With(ident.Tenant).Add(float64(len(pts)))
		writeJSON(w, http.StatusOK, map[string]any{
			"ingested": len(pts), "n": sum.N(), "sample_size": sum.SampleSize(),
		})
		return
	}
	// A cold stream's first touch rehydrates it before anything is
	// logged; st.mu is already held, so the load is singleflight.
	if st.sum == nil {
		if err := s.rehydrateLocked(key, st, sp); err != nil {
			st.mu.Unlock()
			s.ledger.ReleaseBytes(ident.Tenant, charge)
			writeStreamErr(w, err, http.StatusInternalServerError)
			return
		}
	}
	// Log first: a batch is acknowledged only after the WAL accepted it,
	// so the durable log is always a superset of served state. Recovery
	// replays the log with the same per-record InsertBatch the live path
	// uses below, so the rebuilt state matches bit-for-bit. Durable
	// ingest holds st.mu across append+apply to keep WAL order equal to
	// apply order.
	if err := appendTraced(st.app, pts, sp); err != nil {
		st.mu.Unlock()
		s.ledger.ReleaseBytes(ident.Tenant, charge)
		writeErr(w, http.StatusInternalServerError, "logging batch: %v", err)
		return
	}
	if _, err := insertBatchTraced(st.sum, pts, sp); err != nil {
		st.mu.Unlock()
		s.ledger.ReleaseBytes(ident.Tenant, charge)
		writeErr(w, http.StatusInternalServerError, "applying batch: %v", err)
		return
	}
	st.bytes += charge
	st.sinceCkpt += len(pts)
	if sp != nil {
		t0 = time.Now()
	}
	s.maybeCheckpointLocked(key, st)
	if sp != nil {
		sp.ObserveStage("checkpoint", time.Since(t0))
	}
	n, sampleSize := st.sum.N(), st.sum.SampleSize()
	st.mu.Unlock()
	s.enforceCap(sp)
	s.met.ingestPoints.With(ident.Tenant).Add(float64(len(pts)))
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested": len(pts), "n": n, "sample_size": sampleSize,
	})
}

// insertBatchTraced applies a batch with prefilter/insert stage spans
// when a span is live and the summary can report them
// (streamhull.StagedBatchInserter — same state transition either way);
// otherwise it is exactly InsertBatch.
func insertBatchTraced(sum streamhull.Summary, pts []geom.Point, sp *trace.Span) (int, error) {
	if obs := sp.StageObserver(); obs != nil {
		if staged, ok := sum.(streamhull.StagedBatchInserter); ok {
			return staged.InsertBatchObserved(pts, obs)
		}
		start := time.Now()
		n, err := sum.InsertBatch(pts)
		obs("insert", time.Since(start))
		return n, err
	}
	return sum.InsertBatch(pts)
}

// appendTraced logs a batch with wal_append/wal_fsync stage spans when
// a span is live (AppendTimed splits the write from the group-commit
// fsync wait; the fsync stage is ~0 under non-always sync policies,
// where Append does not wait for durability).
func appendTraced(app store.Appender, pts []geom.Point, sp *trace.Span) error {
	if sp == nil {
		return app.Append(pts)
	}
	write, syncWait, err := app.AppendTimed(pts)
	sp.ObserveStage("wal_append", write)
	sp.ObserveStage("wal_fsync", syncWait)
	return err
}

// handleHull and handleQuery serve from the stream's epoch-cached read
// state: the hull fold and the rotating-calipers answers run once per
// summary epoch, and repeat queries between mutations are lock-free
// lookups that never contend with ingest.
func (s *Server) handleHull(w http.ResponseWriter, req *http.Request) {
	tenant := identityFrom(req).Tenant
	st, err := s.get(tenant, req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sp := trace.FromContext(req.Context())
	sp.SetAttr("stream", req.PathValue("id"))
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	qc, err := s.residentQueries(qualifyID(tenant, req.PathValue("id")), st, sp)
	if err != nil {
		writeStreamErr(w, err, http.StatusInternalServerError)
		return
	}
	vs := qc.Hull().Vertices()
	out := make([][2]float64, len(vs))
	for i, v := range vs {
		out[i] = [2]float64{v.X, v.Y}
	}
	resp := map[string]any{
		"vertices": out, "area": qc.Area(), "perimeter": qc.Perimeter(), "n": qc.N(),
	}
	if sp != nil {
		// Epoch-cache revalidation plus (on a miss) the hull fold — the
		// read path's only real work.
		sp.ObserveStage("cache_materialize", time.Since(t0))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	tenant := identityFrom(req).Tenant
	st, err := s.get(tenant, req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sp := trace.FromContext(req.Context())
	sp.SetAttr("stream", req.PathValue("id"))
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	qc, err := s.residentQueries(qualifyID(tenant, req.PathValue("id")), st, sp)
	if err != nil {
		writeStreamErr(w, err, http.StatusInternalServerError)
		return
	}
	var resp map[string]any
	switch qt := req.URL.Query().Get("type"); qt {
	case "diameter":
		d, pair := qc.Diameter()
		resp = map[string]any{
			"diameter": d,
			"pair":     [][2]float64{{pair[0].X, pair[0].Y}, {pair[1].X, pair[1].Y}},
		}
	case "width":
		wv, ang := qc.Width()
		resp = map[string]any{"width": wv, "angle": ang}
	case "extent":
		theta, err := strconv.ParseFloat(req.URL.Query().Get("theta"), 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid theta: %v", err)
			return
		}
		resp = map[string]any{"theta": theta, "extent": qc.Extent(theta)}
	case "circle":
		c, rad := qc.EnclosingCircle()
		resp = map[string]any{"center": [2]float64{c.X, c.Y}, "radius": rad}
	default:
		writeErr(w, http.StatusBadRequest, "unknown query type %q", qt)
		return
	}
	if sp != nil {
		sp.ObserveStage("cache_materialize", time.Since(t0))
	}
	writeJSON(w, http.StatusOK, resp)
}

// wantsBinary reports whether the client asked for the compact binary
// snapshot encoding.
func wantsBinary(header string) bool {
	return strings.Contains(header, "application/octet-stream")
}

func (s *Server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	tenant := identityFrom(req).Tenant
	st, err := s.get(tenant, req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sum, err := s.residentSummary(qualifyID(tenant, req.PathValue("id")), st, trace.FromContext(req.Context()))
	if err != nil {
		writeStreamErr(w, err, http.StatusInternalServerError)
		return
	}
	sn, ok := sum.(streamhull.Snapshotter)
	if !ok {
		writeErr(w, http.StatusBadRequest, "stream kind %q does not support snapshots", st.spec.Kind)
		return
	}
	snap := sn.Snapshot()
	if wantsBinary(req.Header.Get("Accept")) {
		data, err := snap.MarshalBinary()
		if err != nil {
			writeErr(w, http.StatusNotAcceptable, "no binary encoding: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// readSnapshotBody decodes a snapshot request body with the endpoint's
// content negotiation: binary with Content-Type application/octet-stream,
// JSON otherwise. On failure it writes the error response itself (413
// for an oversized body, 400 otherwise) and reports false.
func (s *Server) readSnapshotBody(w http.ResponseWriter, req *http.Request) (streamhull.Snapshot, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		} else {
			writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return streamhull.Snapshot{}, false
	}
	var snap streamhull.Snapshot
	if wantsBinary(req.Header.Get("Content-Type")) {
		err = snap.UnmarshalBinary(data)
	} else {
		snap, err = streamhull.DecodeSnapshot(data)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return streamhull.Snapshot{}, false
	}
	return snap, true
}

// handleRestore is the snapshot endpoint's write half, serving two
// flavors distinguished by the source query parameter. Without it, the
// body restores a whole stream from a previously captured snapshot (JSON
// or, with Content-Type: application/octet-stream, the binary encoding).
// With ?source=<name>&epoch=<n> it is a fan-in push: the body becomes
// that source's contribution to an existing fan-in aggregate stream.
func (s *Server) handleRestore(w http.ResponseWriter, req *http.Request) {
	if source := req.URL.Query().Get("source"); source != "" {
		s.handleSourcePush(w, req, source)
		return
	}
	ident := identityFrom(req)
	id := req.PathValue("id")
	snap, ok := s.readSnapshotBody(w, req)
	if !ok {
		return
	}
	sum, err := streamhull.SummaryFromSnapshot(snap)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A restore adopts the snapshot's full point count into the tenant's
	// byte budget, same accounting as live ingest.
	charge := int64(sum.N()) * bytesPerPoint
	if err := s.ledger.ReserveBytes(ident.Tenant, charge); err != nil {
		writeStreamErr(w, err, http.StatusRequestEntityTooLarge)
		return
	}
	// Durable restores persist a checkpoint immediately, so the stream
	// survives a crash that happens before its first regular checkpoint.
	// The payload must match what recovery expects for the kind:
	// windowed streams checkpoint their bucket state, the rest the
	// snapshot binary. It is sealed inside addStream, before the stream
	// becomes visible — a checkpoint written after publication could
	// race a concurrent ingest and compact its log record away.
	var checkpoint []byte
	if s.store != nil {
		var cerr error
		if wh, ok := sum.(*streamhull.WindowedHull); ok {
			checkpoint, cerr = wh.MarshalState()
		} else {
			checkpoint, cerr = snap.MarshalBinary()
		}
		if cerr != nil {
			s.logger.Error("wal: encoding restored snapshot failed",
				"stream", id, "tenant", ident.Tenant, "err", cerr)
			checkpoint = nil
		}
	}
	st, err := s.addStream(ident.Tenant, id, sum, checkpoint)
	if err != nil {
		s.ledger.ReleaseBytes(ident.Tenant, charge)
		writeStreamErr(w, err, http.StatusConflict)
		return
	}
	st.mu.Lock()
	st.bytes += charge
	n := st.sum.N()
	st.mu.Unlock()
	resp := createResponse(id, sum.Spec())
	resp["n"] = n
	writeJSON(w, http.StatusCreated, resp)
}

// handleSourcePush applies one source-tagged push to a fan-in aggregate
// stream. Two wire modes share the endpoint, split by Content-Type:
//
//   - A full snapshot (JSON or binary): the follower's latest sample
//     replaces that source's previous contribution wholesale, keyed by
//     the ?epoch= parameter. Pushes with an epoch older than the
//     source's last accepted one are rejected with 409 stale_epoch —
//     they are from a lagging or superseded sender — so a follower that
//     crashed mid-push re-syncs by pushing again with a higher epoch,
//     and the aggregate converges as if the stale push never happened.
//   - A delta frame (Content-Type application/x-streamhull-delta): only
//     the sample slots changed since the push this aggregate last ACKED
//     (the frame's base epoch), CRC-checked end to end. A frame that
//     cannot be anchored — first contact, an epoch gap, a base mismatch
//     — is a 409 with code "resync_required" carrying the epoch we
//     actually hold, and the follower answers with a full snapshot.
//
// Either way a 200 carries "acked_epoch": the epoch now stored for the
// source, which is the base the follower's next delta must build on.
// The optional ?addr= parameter advertises the follower's own base URL
// for aggregator-initiated pulls (see pull.go).
func (s *Server) handleSourcePush(w http.ResponseWriter, req *http.Request, source string) {
	id := req.PathValue("id")
	st, err := s.get(identityFrom(req).Tenant, id, false)
	if err != nil {
		s.met.pushRejected.Inc()
		writeErr(w, http.StatusNotFound, "%v (create the aggregate first: PUT with spec {\"kind\":\"fanin\"})", err)
		return
	}
	agg, ok := st.summary().(*streamhull.FanInHull)
	if !ok {
		s.met.pushRejected.Inc()
		writeErr(w, http.StatusConflict, "stream %q is %s, not a fan-in aggregate", id, st.spec.Kind)
		return
	}
	if strings.Contains(req.Header.Get("Content-Type"), fanin.DeltaContentType) {
		s.handleDeltaPush(w, req, agg, id, source)
		return
	}
	epochStr := req.URL.Query().Get("epoch")
	epoch, err := strconv.ParseUint(epochStr, 10, 64)
	if err != nil {
		s.met.pushRejected.Inc()
		writeErr(w, http.StatusBadRequest, "source push requires a numeric epoch, got %q", epochStr)
		return
	}
	snap, ok := s.readSnapshotBody(w, req)
	if !ok {
		s.met.pushRejected.Inc()
		return
	}
	if err := agg.Push(source, epoch, snap); err != nil {
		s.met.pushRejected.Inc()
		if errors.Is(err, streamhull.ErrStaleEpoch) {
			writeErrCode(w, http.StatusConflict, "stale_epoch", "%v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.advertiseSource(agg, req, source)
	s.met.pushAccepted.Inc()
	acked, _ := agg.SourceEpoch(source)
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": id, "source": source, "epoch": epoch, "acked_epoch": acked,
		"source_n": snap.N, "n": agg.N(), "sources": len(agg.Sources()),
	})
}

// handleDeltaPush is the delta half of handleSourcePush: decode the
// frame, anchor it on the source's stored contribution, and report the
// epoch this aggregate now holds — or demand a resync when the frame
// cannot be anchored.
func (s *Server) handleDeltaPush(w http.ResponseWriter, req *http.Request, agg *streamhull.FanInHull, id, source string) {
	data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.met.pushRejected.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		} else {
			writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return
	}
	d, err := fanin.DecodeDelta(data)
	if err != nil {
		s.met.pushRejected.Inc()
		writeErr(w, http.StatusBadRequest, "decoding delta: %v", err)
		return
	}
	if err := agg.PushDelta(source, d); err != nil {
		s.met.pushRejected.Inc()
		switch {
		case errors.Is(err, streamhull.ErrStaleEpoch):
			writeErrCode(w, http.StatusConflict, "stale_epoch", "%v", err)
		case errors.Is(err, streamhull.ErrResyncNeeded):
			s.met.pushResyncs.Inc()
			acked, _ := agg.SourceEpoch(source)
			writeJSON(w, http.StatusConflict, errorBody{
				Error: err.Error(), Code: "resync_required", AckedEpoch: acked,
			})
		default:
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.advertiseSource(agg, req, source)
	s.met.pushAccepted.Inc()
	s.met.pushDeltas.Inc()
	acked, _ := agg.SourceEpoch(source)
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": id, "source": source, "epoch": d.Epoch, "acked_epoch": acked,
		"source_n": d.N, "n": agg.N(), "sources": len(agg.Sources()),
	})
}

// advertiseSource records the pull-back URL a push carried (?addr=),
// bounding it to something http-ish so a garbage value cannot become a
// pull target.
func (s *Server) advertiseSource(agg *streamhull.FanInHull, req *http.Request, source string) {
	addr := req.URL.Query().Get("addr")
	if addr == "" {
		return
	}
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		return
	}
	agg.Advertise(source, addr)
}

// StreamSnapshots captures every snapshot-capable stream as an encoded
// JSON snapshot — the collect half of the fan-in follower loop
// (fanin.Pusher pushes what this returns to the upstream aggregator).
// Kinds with no snapshot form (exact, partial, partitioned) are skipped,
// as are fan-in aggregates themselves: a follower forwards its own
// streams, not state other nodes already pushed to it. Streams parked
// in the cold tier are skipped too (their nil summary fails the
// Snapshotter assertion below) — an idle stream's last pushed
// contribution stands upstream until it warms up again, which beats
// rehydrating the entire cold set every push interval.
// Snapshots carry the tenant-local id, not the internal key: the
// upstream aggregator derives its namespace from the pusher's token, so
// a follower's "acme/clicks" forwards as "clicks" under whatever tenant
// the push credential names (for the root tenant the two are the same).
func (s *Server) StreamSnapshots() []fanin.StreamSnapshot {
	return s.streamSnapshots(false)
}

// StreamSnapshotsCascade is StreamSnapshots for a middle tier of a
// cascaded fan-in topology (leaf → region → global): fan-in aggregates
// are INCLUDED, each contributing its merged O(r) sample, so a regional
// aggregator can itself run a push loop toward a global one. The leaf
// tier's per-source epochs stay local; upstream, the whole region is
// one source whose contribution is superseded as a unit — which is what
// makes a leaf restart propagate: the region re-merges, its next push
// carries a higher epoch, and the global tier drops the stale region
// wholesale.
func (s *Server) StreamSnapshotsCascade() []fanin.StreamSnapshot {
	return s.streamSnapshots(true)
}

func (s *Server) streamSnapshots(includeAggregates bool) []fanin.StreamSnapshot {
	s.mu.RLock()
	ids := make([]string, 0, len(s.streams))
	sts := make([]*stream, 0, len(s.streams))
	for key, st := range s.streams {
		_, id := splitTenant(key)
		ids = append(ids, id)
		sts = append(sts, st)
	}
	s.mu.RUnlock()
	out := make([]fanin.StreamSnapshot, 0, len(ids))
	for i, st := range sts {
		if st.spec.Kind == streamhull.KindFanIn && !includeAggregates {
			continue
		}
		sn, ok := st.summary().(streamhull.Snapshotter)
		if !ok {
			continue
		}
		snap := sn.Snapshot()
		data, err := snap.Encode()
		if err != nil {
			s.logger.Error("fanin: encoding stream snapshot failed",
				"stream", ids[i], "err", err)
			continue
		}
		out = append(out, fanin.StreamSnapshot{
			Stream: ids[i], R: snap.R, Data: data,
			N: snap.N, Points: snap.Points,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// handleDropSource removes one source's contribution from a fan-in
// aggregate (an operator retiring a dead follower; a live one simply
// re-joins with its next push).
func (s *Server) handleDropSource(w http.ResponseWriter, req *http.Request) {
	id, source := req.PathValue("id"), req.PathValue("source")
	st, err := s.get(identityFrom(req).Tenant, id, false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	agg, ok := st.summary().(*streamhull.FanInHull)
	if !ok {
		writeErr(w, http.StatusConflict, "stream %q is %s, not a fan-in aggregate", id, st.spec.Kind)
		return
	}
	if !agg.DropSource(source) {
		writeErr(w, http.StatusNotFound, "aggregate %q has no source %q", id, source)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stream": id, "dropped": source, "sources": len(agg.Sources())})
}

// pairAnswer computes one pair-query response body from two hulls, or
// ok=false for an unknown type. Factored out of handlePairQuery so the
// memoized and cold paths share one implementation.
func pairAnswer(qt string, ha, hb streamhull.Polygon) (map[string]any, bool) {
	switch qt {
	case "distance":
		d, pair := streamhull.MinDistance(ha, hb)
		return map[string]any{
			"distance": d,
			"pair":     [][2]float64{{pair[0].X, pair[0].Y}, {pair[1].X, pair[1].Y}},
		}, true
	case "separable":
		line, ok := streamhull.SeparatingLine(ha, hb)
		resp := map[string]any{"separable": ok}
		if ok {
			resp["line"] = map[string]any{
				"normal": [2]float64{line.N.X, line.N.Y}, "offset": line.Offset,
			}
		}
		return resp, true
	case "overlap":
		return map[string]any{"overlap_area": streamhull.OverlapArea(ha, hb)}, true
	case "contains":
		return map[string]any{
			"a_contains_b": ha.ContainsPolygon(hb),
			"b_contains_a": hb.ContainsPolygon(ha),
		}, true
	default:
		return nil, false
	}
}

func (s *Server) handlePairQuery(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	idA, idB := q.Get("a"), q.Get("b")
	if idA == "" || idB == "" {
		writeErr(w, http.StatusBadRequest, "pair query requires both a and b stream ids")
		return
	}
	tenant := identityFrom(req).Tenant
	sa, err := s.get(tenant, idA, false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sb, err := s.get(tenant, idB, false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	qt := q.Get("type")
	// Pair answers combine two hulls, so a single stream's epoch cache
	// cannot hold them; instead they memoize on the (epochA, epochB)
	// pair. The versions are read BEFORE the hulls so a racing mutation
	// can only stamp an entry older than its contents — causing a
	// spurious recompute later, never a stale answer (the same ordering
	// argument QueryCache itself uses).
	sp := trace.FromContext(req.Context())
	qa, err := s.residentQueries(qualifyID(tenant, idA), sa, sp)
	if err != nil {
		writeStreamErr(w, err, http.StatusInternalServerError)
		return
	}
	qb, err := s.residentQueries(qualifyID(tenant, idB), sb, sp)
	if err != nil {
		writeStreamErr(w, err, http.StatusInternalServerError)
		return
	}
	ea, eb := qa.Version(), qb.Version()
	ha, hb := qa.Hull(), qb.Hull()
	// A summary with no live points has a zero-vertex hull; the geometry
	// kernels (closest pair, separating line, clipping) have no answer
	// for it, so surface an explicit error instead of a fabricated
	// [0,0] witness. This covers never-written streams AND windows whose
	// last points just expired.
	if ha.IsEmpty() || hb.IsEmpty() {
		var empty []string
		if ha.IsEmpty() {
			empty = append(empty, idA)
		}
		if hb.IsEmpty() {
			empty = append(empty, idB)
		}
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("pair query needs points on both sides; empty stream(s): %s",
				strings.Join(empty, ", ")),
			Code:  "empty_streams",
			Empty: empty,
		})
		return
	}
	key := pairKey{qa: qa, qb: qb, typ: qt}
	if resp, ok := s.pairs.get(key, ea, eb); ok {
		s.met.pairHits.Inc()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.met.pairMisses.Inc()
	resp, ok := pairAnswer(qt, ha, hb)
	if !ok {
		writeErr(w, http.StatusBadRequest, "unknown pair query type %q", qt)
		return
	}
	// Memoize only if both caches are still their streams' live ones: a
	// concurrent delete or checkpoint re-base purges entries keyed on
	// retired caches, and a put landing after that purge would re-pin
	// them. (A delete sliding in between this check and the put leaves
	// one unservable entry behind — bounded by the cache cap, and gone
	// the next time anything touches the map's eviction path.)
	liveA, errA := s.get(tenant, idA, false)
	liveB, errB := s.get(tenant, idB, false)
	if errA == nil && errB == nil && liveA.queries() == qa && liveB.queries() == qb {
		s.pairs.put(key, ea, eb, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}
