// Package server exposes stream-hull summaries over HTTP with a small
// JSON API — the shape of deployment the paper motivates (§1): many
// sources push points, the service holds only O(r)-size summaries per
// stream, and extremal queries (diameter, width, extent, separation,
// containment, overlap) are answered from the summaries at any time.
//
// Endpoints:
//
//	PUT    /v1/streams/{id}?algo=adaptive|uniform|exact&r=32&window=<n|dur>  create
//	DELETE /v1/streams/{id}                                    drop
//	GET    /v1/streams                                         list
//	POST   /v1/streams/{id}/points   {"points": [[x,y], ...]}  ingest
//	GET    /v1/streams/{id}/hull                               hull polygon
//	GET    /v1/streams/{id}/query?type=diameter|width|extent|circle&theta=rad
//	GET    /v1/pairs/query?a=id&b=id&type=distance|separable|overlap|contains
//	GET    /v1/streams/{id}/snapshot                           sample snapshot
//
// A window=<count> or window=<duration> on create makes the stream a
// sliding-window summary (adaptive buckets): queries then cover only the
// last count points or the last duration of wall time. Time-windowed
// streams are swept in the background so idle streams age out too.
//
// Streams are auto-created on first ingest with the default algorithm
// when not explicitly configured.
//
// Errors are structured JSON ({"error": "..."}): 404 for unknown
// streams, 400 for bad input, 409 for duplicate creates, 413 for
// oversized bodies or batches, 507 when the stream limit is reached.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
)

// Config parameterizes a Server.
type Config struct {
	// DefaultR is the sample parameter used for auto-created streams.
	// Zero selects 32.
	DefaultR int
	// MaxStreams bounds the number of live streams (0 = 1024).
	MaxStreams int
	// MaxBatch bounds the number of points per ingest request (0 = 65536).
	MaxBatch int
	// MaxBodyBytes bounds the size of ingest request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// SweepInterval is how often the background sweeper expires idle
	// time-windowed streams (0 = 2s). The sweeper starts lazily with the
	// first windowed stream; call Close to stop it.
	SweepInterval time.Duration
}

// Server is an HTTP handler managing named stream summaries.
type Server struct {
	cfg       Config
	mu        sync.RWMutex
	streams   map[string]*stream
	mux       *http.ServeMux
	sweepOnce sync.Once
	closeOnce sync.Once
	sweepStop chan struct{}
}

type stream struct {
	sum    streamhull.Summary
	algo   string
	r      int
	window string // "" for lifetime streams, else the window spec
}

// errStreamLimit distinguishes capacity exhaustion from unknown-stream
// lookups so handlers can return 507 instead of 404.
var errStreamLimit = errors.New("stream limit reached")

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.DefaultR == 0 {
		cfg.DefaultR = 32
	}
	if cfg.MaxStreams == 0 {
		cfg.MaxStreams = 1024
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 65536
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 2 * time.Second
	}
	s := &Server{
		cfg: cfg, streams: make(map[string]*stream), mux: http.NewServeMux(),
		sweepStop: make(chan struct{}),
	}
	s.mux.HandleFunc("PUT /v1/streams/{id}", s.handleCreate)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/streams", s.handleList)
	s.mux.HandleFunc("POST /v1/streams/{id}/points", s.handlePoints)
	s.mux.HandleFunc("GET /v1/streams/{id}/hull", s.handleHull)
	s.mux.HandleFunc("GET /v1/streams/{id}/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/streams/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/pairs/query", s.handlePairQuery)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the background expiry sweeper, if it was started. The
// handler itself remains usable.
func (s *Server) Close() {
	s.sweepOnce.Do(func() {}) // ensure a later windowed create cannot start it
	s.closeOnce.Do(func() { close(s.sweepStop) })
}

// startSweeper launches the background expiry loop (once, lazily, when
// the first windowed stream appears).
func (s *Server) startSweeper() {
	s.sweepOnce.Do(func() {
		go func() {
			t := time.NewTicker(s.cfg.SweepInterval)
			defer t.Stop()
			for {
				select {
				case <-s.sweepStop:
					return
				case <-t.C:
					s.sweep()
				}
			}
		}()
	})
}

// sweep expires every time-windowed stream once (count windows expire
// on insert and need no sweeping).
func (s *Server) sweep() {
	s.mu.RLock()
	whs := make([]*streamhull.WindowedHull, 0, len(s.streams))
	for _, st := range s.streams {
		if wh, ok := st.sum.(*streamhull.WindowedHull); ok && wh.ByTime() {
			whs = append(whs, wh)
		}
	}
	s.mu.RUnlock()
	for _, wh := range whs {
		wh.Expire()
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// newSummary builds a summary for an algorithm name and an optional
// window spec (a point count like "5000" or a duration like "30s").
func newSummary(algo string, r int, window string) (streamhull.Summary, error) {
	if window != "" {
		if algo != "" && algo != "adaptive" {
			return nil, fmt.Errorf("window requires algo=adaptive, got %q", algo)
		}
		return streamhull.NewWindowedFromSpec(r, window, nil)
	}
	switch algo {
	case "", "adaptive":
		if r < 4 {
			return nil, fmt.Errorf("adaptive requires r ≥ 4, got %d", r)
		}
		return streamhull.NewAdaptive(r), nil
	case "uniform":
		if r < 3 {
			return nil, fmt.Errorf("uniform requires r ≥ 3, got %d", r)
		}
		return streamhull.NewUniform(r), nil
	case "exact":
		return streamhull.NewExact(), nil
	default:
		return nil, fmt.Errorf("unknown algo %q (want adaptive, uniform, or exact)", algo)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request) {
	// Creation is configured by query parameters; any body is discarded
	// through a bounded reader so a client cannot stream unbounded data.
	_, _ = io.Copy(io.Discard, http.MaxBytesReader(w, req.Body, 1<<20))
	id := req.PathValue("id")
	algo := req.URL.Query().Get("algo")
	if algo == "" {
		algo = "adaptive"
	}
	window := req.URL.Query().Get("window")
	r := s.cfg.DefaultR
	if rs := req.URL.Query().Get("r"); rs != "" {
		v, err := strconv.Atoi(rs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid r: %v", err)
			return
		}
		r = v
	}
	sum, err := newSummary(algo, r, window)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	if _, exists := s.streams[id]; exists {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "stream %q already exists", id)
		return
	}
	if len(s.streams) >= s.cfg.MaxStreams {
		s.mu.Unlock()
		writeErr(w, http.StatusInsufficientStorage, "stream limit %d reached", s.cfg.MaxStreams)
		return
	}
	s.streams[id] = &stream{sum: sum, algo: algo, r: r, window: window}
	s.mu.Unlock()
	// Only time windows age out between inserts and need the background
	// sweeper; count windows expire on insert.
	if wh, ok := sum.(*streamhull.WindowedHull); ok && wh.ByTime() {
		s.startSweeper()
	}
	resp := map[string]any{"id": id, "algo": algo, "r": r}
	if window != "" {
		resp["window"] = window
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.streams[id]; !ok {
		writeErr(w, http.StatusNotFound, "no stream %q", id)
		return
	}
	delete(s.streams, id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

type streamInfo struct {
	ID          string `json:"id"`
	Algo        string `json:"algo"`
	R           int    `json:"r"`
	N           int    `json:"n"`
	SampleSize  int    `json:"sample_size"`
	Window      string `json:"window,omitempty"`
	WindowCount int    `json:"window_count,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	infos := make([]streamInfo, 0, len(s.streams))
	for id, st := range s.streams {
		info := streamInfo{
			ID: id, Algo: st.algo, R: st.r, N: st.sum.N(), SampleSize: st.sum.SampleSize(),
			Window: st.window,
		}
		if wh, ok := st.sum.(*streamhull.WindowedHull); ok {
			info.WindowCount = wh.WindowCount()
		}
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"streams": infos})
}

// get returns the stream, auto-creating it for ingest when allowed.
func (s *Server) get(id string, autocreate bool) (*stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[id]; ok {
		return st, nil
	}
	if !autocreate {
		return nil, fmt.Errorf("no stream %q", id)
	}
	if len(s.streams) >= s.cfg.MaxStreams {
		return nil, fmt.Errorf("%w (%d)", errStreamLimit, s.cfg.MaxStreams)
	}
	sum, err := newSummary("adaptive", s.cfg.DefaultR, "")
	if err != nil {
		return nil, err
	}
	st := &stream{sum: sum, algo: "adaptive", r: s.cfg.DefaultR}
	s.streams[id] = st
	return st, nil
}

type pointsBody struct {
	Points [][2]float64 `json:"points"`
}

func (s *Server) handlePoints(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	var body pointsBody
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(body.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	if len(body.Points) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d",
			len(body.Points), s.cfg.MaxBatch)
		return
	}
	st, err := s.get(id, true)
	if err != nil {
		// Auto-creation only fails on capacity, not on a missing stream.
		if errors.Is(err, errStreamLimit) {
			writeErr(w, http.StatusInsufficientStorage, "%v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	for i, xy := range body.Points {
		if err := st.sum.Insert(geom.Pt(xy[0], xy[1])); err != nil {
			writeErr(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested": len(body.Points), "n": st.sum.N(), "sample_size": st.sum.SampleSize(),
	})
}

func (s *Server) handleHull(w http.ResponseWriter, req *http.Request) {
	st, err := s.get(req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	hull := st.sum.Hull()
	vs := hull.Vertices()
	out := make([][2]float64, len(vs))
	for i, v := range vs {
		out[i] = [2]float64{v.X, v.Y}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertices": out, "area": hull.Area(), "perimeter": hull.Perimeter(), "n": st.sum.N(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	st, err := s.get(req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	hull := st.sum.Hull()
	switch qt := req.URL.Query().Get("type"); qt {
	case "diameter":
		d, pair := hull.Diameter()
		writeJSON(w, http.StatusOK, map[string]any{
			"diameter": d,
			"pair":     [][2]float64{{pair[0].X, pair[0].Y}, {pair[1].X, pair[1].Y}},
		})
	case "width":
		wv, ang := hull.Width()
		writeJSON(w, http.StatusOK, map[string]any{"width": wv, "angle": ang})
	case "extent":
		theta, err := strconv.ParseFloat(req.URL.Query().Get("theta"), 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid theta: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"theta": theta, "extent": hull.Extent(theta)})
	case "circle":
		c, rad := hull.EnclosingCircle()
		writeJSON(w, http.StatusOK, map[string]any{"center": [2]float64{c.X, c.Y}, "radius": rad})
	default:
		writeErr(w, http.StatusBadRequest, "unknown query type %q", qt)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	st, err := s.get(req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	type snapshotter interface{ Snapshot() streamhull.Snapshot }
	sn, ok := st.sum.(snapshotter)
	if !ok {
		writeErr(w, http.StatusBadRequest, "stream algo %q does not support snapshots", st.algo)
		return
	}
	writeJSON(w, http.StatusOK, sn.Snapshot())
}

func (s *Server) handlePairQuery(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	if q.Get("a") == "" || q.Get("b") == "" {
		writeErr(w, http.StatusBadRequest, "pair query requires both a and b stream ids")
		return
	}
	sa, err := s.get(q.Get("a"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sb, err := s.get(q.Get("b"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	ha, hb := sa.sum.Hull(), sb.sum.Hull()
	switch qt := q.Get("type"); qt {
	case "distance":
		d, pair := streamhull.MinDistance(ha, hb)
		writeJSON(w, http.StatusOK, map[string]any{
			"distance": d,
			"pair":     [][2]float64{{pair[0].X, pair[0].Y}, {pair[1].X, pair[1].Y}},
		})
	case "separable":
		line, ok := streamhull.SeparatingLine(ha, hb)
		resp := map[string]any{"separable": ok}
		if ok {
			resp["line"] = map[string]any{
				"normal": [2]float64{line.N.X, line.N.Y}, "offset": line.Offset,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	case "overlap":
		area := streamhull.OverlapArea(ha, hb)
		writeJSON(w, http.StatusOK, map[string]any{"overlap_area": area})
	case "contains":
		writeJSON(w, http.StatusOK, map[string]any{
			"a_contains_b": ha.ContainsPolygon(hb),
			"b_contains_a": hb.ContainsPolygon(ha),
		})
	default:
		writeErr(w, http.StatusBadRequest, "unknown pair query type %q", qt)
	}
}
