// Package server exposes stream-hull summaries over HTTP with a small
// JSON API — the shape of deployment the paper motivates (§1): many
// sources push points, the service holds only O(r)-size summaries per
// stream, and extremal queries (diameter, width, extent, separation,
// containment, overlap) are answered from the summaries at any time.
//
// Endpoints:
//
//	PUT    /v1/streams/{id}?algo=adaptive|uniform|exact&r=32   create
//	DELETE /v1/streams/{id}                                    drop
//	GET    /v1/streams                                         list
//	POST   /v1/streams/{id}/points   {"points": [[x,y], ...]}  ingest
//	GET    /v1/streams/{id}/hull                               hull polygon
//	GET    /v1/streams/{id}/query?type=diameter|width|extent|circle&theta=rad
//	GET    /v1/pairs/query?a=id&b=id&type=distance|separable|overlap|contains
//	GET    /v1/streams/{id}/snapshot                           sample snapshot
//
// Streams are auto-created on first ingest with the default algorithm
// when not explicitly configured.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
)

// Config parameterizes a Server.
type Config struct {
	// DefaultR is the sample parameter used for auto-created streams.
	// Zero selects 32.
	DefaultR int
	// MaxStreams bounds the number of live streams (0 = 1024).
	MaxStreams int
	// MaxBatch bounds the number of points per ingest request (0 = 65536).
	MaxBatch int
}

// Server is an HTTP handler managing named stream summaries.
type Server struct {
	cfg     Config
	mu      sync.RWMutex
	streams map[string]*stream
	mux     *http.ServeMux
}

type stream struct {
	sum  streamhull.Summary
	algo string
	r    int
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.DefaultR == 0 {
		cfg.DefaultR = 32
	}
	if cfg.MaxStreams == 0 {
		cfg.MaxStreams = 1024
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 65536
	}
	s := &Server{cfg: cfg, streams: make(map[string]*stream), mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /v1/streams/{id}", s.handleCreate)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/streams", s.handleList)
	s.mux.HandleFunc("POST /v1/streams/{id}/points", s.handlePoints)
	s.mux.HandleFunc("GET /v1/streams/{id}/hull", s.handleHull)
	s.mux.HandleFunc("GET /v1/streams/{id}/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/streams/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/pairs/query", s.handlePairQuery)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// newSummary builds a summary for an algorithm name.
func newSummary(algo string, r int) (streamhull.Summary, error) {
	switch algo {
	case "", "adaptive":
		if r < 4 {
			return nil, fmt.Errorf("adaptive requires r ≥ 4, got %d", r)
		}
		return streamhull.NewAdaptive(r), nil
	case "uniform":
		if r < 3 {
			return nil, fmt.Errorf("uniform requires r ≥ 3, got %d", r)
		}
		return streamhull.NewUniform(r), nil
	case "exact":
		return streamhull.NewExact(), nil
	default:
		return nil, fmt.Errorf("unknown algo %q (want adaptive, uniform, or exact)", algo)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	algo := req.URL.Query().Get("algo")
	if algo == "" {
		algo = "adaptive"
	}
	r := s.cfg.DefaultR
	if rs := req.URL.Query().Get("r"); rs != "" {
		v, err := strconv.Atoi(rs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid r: %v", err)
			return
		}
		r = v
	}
	sum, err := newSummary(algo, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.streams[id]; exists {
		writeErr(w, http.StatusConflict, "stream %q already exists", id)
		return
	}
	if len(s.streams) >= s.cfg.MaxStreams {
		writeErr(w, http.StatusInsufficientStorage, "stream limit %d reached", s.cfg.MaxStreams)
		return
	}
	s.streams[id] = &stream{sum: sum, algo: algo, r: r}
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "algo": algo, "r": r})
}

func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.streams[id]; !ok {
		writeErr(w, http.StatusNotFound, "no stream %q", id)
		return
	}
	delete(s.streams, id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

type streamInfo struct {
	ID         string `json:"id"`
	Algo       string `json:"algo"`
	R          int    `json:"r"`
	N          int    `json:"n"`
	SampleSize int    `json:"sample_size"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	infos := make([]streamInfo, 0, len(s.streams))
	for id, st := range s.streams {
		infos = append(infos, streamInfo{
			ID: id, Algo: st.algo, R: st.r, N: st.sum.N(), SampleSize: st.sum.SampleSize(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"streams": infos})
}

// get returns the stream, auto-creating it for ingest when allowed.
func (s *Server) get(id string, autocreate bool) (*stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[id]; ok {
		return st, nil
	}
	if !autocreate {
		return nil, fmt.Errorf("no stream %q", id)
	}
	if len(s.streams) >= s.cfg.MaxStreams {
		return nil, fmt.Errorf("stream limit %d reached", s.cfg.MaxStreams)
	}
	sum, err := newSummary("adaptive", s.cfg.DefaultR)
	if err != nil {
		return nil, err
	}
	st := &stream{sum: sum, algo: "adaptive", r: s.cfg.DefaultR}
	s.streams[id] = st
	return st, nil
}

type pointsBody struct {
	Points [][2]float64 `json:"points"`
}

func (s *Server) handlePoints(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	var body pointsBody
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 16<<20))
	if err := dec.Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(body.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	if len(body.Points) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d",
			len(body.Points), s.cfg.MaxBatch)
		return
	}
	st, err := s.get(id, true)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	for i, xy := range body.Points {
		if err := st.sum.Insert(geom.Pt(xy[0], xy[1])); err != nil {
			writeErr(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested": len(body.Points), "n": st.sum.N(), "sample_size": st.sum.SampleSize(),
	})
}

func (s *Server) handleHull(w http.ResponseWriter, req *http.Request) {
	st, err := s.get(req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	hull := st.sum.Hull()
	vs := hull.Vertices()
	out := make([][2]float64, len(vs))
	for i, v := range vs {
		out[i] = [2]float64{v.X, v.Y}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertices": out, "area": hull.Area(), "perimeter": hull.Perimeter(), "n": st.sum.N(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	st, err := s.get(req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	hull := st.sum.Hull()
	switch qt := req.URL.Query().Get("type"); qt {
	case "diameter":
		d, pair := hull.Diameter()
		writeJSON(w, http.StatusOK, map[string]any{
			"diameter": d,
			"pair":     [][2]float64{{pair[0].X, pair[0].Y}, {pair[1].X, pair[1].Y}},
		})
	case "width":
		wv, ang := hull.Width()
		writeJSON(w, http.StatusOK, map[string]any{"width": wv, "angle": ang})
	case "extent":
		theta, err := strconv.ParseFloat(req.URL.Query().Get("theta"), 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid theta: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"theta": theta, "extent": hull.Extent(theta)})
	case "circle":
		c, rad := hull.EnclosingCircle()
		writeJSON(w, http.StatusOK, map[string]any{"center": [2]float64{c.X, c.Y}, "radius": rad})
	default:
		writeErr(w, http.StatusBadRequest, "unknown query type %q", qt)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	st, err := s.get(req.PathValue("id"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	type snapshotter interface{ Snapshot() streamhull.Snapshot }
	sn, ok := st.sum.(snapshotter)
	if !ok {
		writeErr(w, http.StatusBadRequest, "stream algo %q does not support snapshots", st.algo)
		return
	}
	writeJSON(w, http.StatusOK, sn.Snapshot())
}

func (s *Server) handlePairQuery(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	sa, err := s.get(q.Get("a"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sb, err := s.get(q.Get("b"), false)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	ha, hb := sa.sum.Hull(), sb.sum.Hull()
	switch qt := q.Get("type"); qt {
	case "distance":
		d, pair := streamhull.MinDistance(ha, hb)
		writeJSON(w, http.StatusOK, map[string]any{
			"distance": d,
			"pair":     [][2]float64{{pair[0].X, pair[0].Y}, {pair[1].X, pair[1].Y}},
		})
	case "separable":
		line, ok := streamhull.SeparatingLine(ha, hb)
		resp := map[string]any{"separable": ok}
		if ok {
			resp["line"] = map[string]any{
				"normal": [2]float64{line.N.X, line.N.Y}, "offset": line.Offset,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	case "overlap":
		area := streamhull.OverlapArea(ha, hb)
		writeJSON(w, http.StatusOK, map[string]any{"overlap_area": area})
	case "contains":
		writeJSON(w, http.StatusOK, map[string]any{
			"a_contains_b": ha.ContainsPolygon(hb),
			"b_contains_a": hb.ContainsPolygon(ha),
		})
	default:
		writeErr(w, http.StatusBadRequest, "unknown pair query type %q", qt)
	}
}
