package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/internal/trace"
)

// Aggregator-initiated pulls.
//
// The push loop's failure mode is silence: a wedged follower (deadlock,
// partition, a push loop that died while the server lived) simply stops
// pushing, and its last contribution goes stale with nothing on the
// aggregator's side but a growing lag_ms. When Config.PullAfter is set,
// the aggregator stops waiting: a background loop scans every fan-in
// aggregate's sources, and any source whose last accepted push is older
// than the threshold — and which advertised a pull-back URL on its
// pushes (?addr=, hullserver's -push-addr) — gets its snapshot FETCHED
// by the aggregator itself: GET {addr}/v1/streams/{id}/snapshot,
// authenticated with Config.PullToken, traced as a "fanin.pull" root
// span, and applied as a normal full push stamped with the pull's
// wall-clock epoch.
//
// That epoch stamp matters twice over. It supersedes the source's stale
// contribution exactly like the follower's own next push would, and —
// because it moves the source's epoch underneath the follower — the
// follower's next delta push no longer anchors and is bounced with
// resync_required, which the pusher answers with a full snapshot. A
// pull therefore never splits the two sides' view of the base; it
// forces the next exchange to re-establish it.
//
// Failures back off per source (doubling from the scan interval up to a
// minute) so one dead follower costs one request a minute, not one per
// scan. Successes and failures are streamhull_fanin_pulls_total and
// streamhull_fanin_pull_errors_total; per-source pull state also rides
// the stream detail response.

// pullState is one source's pull bookkeeping.
type pullState struct {
	pulls    uint64    // successful pulls applied
	failures uint64    // consecutive failures (resets on success)
	lastPull time.Time // when the last successful pull landed
	nextTry  time.Time // backoff gate for the next attempt
}

// puller is the background pull loop's state.
type puller struct {
	s      *Server
	client *http.Client

	mu    sync.Mutex
	state map[string]*pullState // keyed stream-key + "\x00" + source
}

// pullKey joins the aggregate's internal key and a source name.
func pullKey(streamKey, source string) string { return streamKey + "\x00" + source }

// newPuller wires the loop; the caller starts run() when PullAfter > 0.
func newPuller(s *Server) *puller {
	client := s.cfg.PullClient
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &puller{s: s, client: client, state: make(map[string]*pullState)}
}

// interval is the scan period: PullInterval when set, else half the lag
// threshold, floored so a tiny threshold cannot spin the loop.
func (p *puller) interval() time.Duration {
	if iv := p.s.cfg.PullInterval; iv > 0 {
		return iv
	}
	iv := p.s.cfg.PullAfter / 2
	if iv < 100*time.Millisecond {
		iv = 100 * time.Millisecond
	}
	return iv
}

// run scans until the server closes (the sweepStop channel doubles as
// the server-wide background-loop stop signal).
func (p *puller) run() {
	t := time.NewTicker(p.interval())
	defer t.Stop()
	for {
		select {
		case <-p.s.sweepStop:
			return
		case <-t.C:
			p.scan()
		}
	}
}

// scan walks every fan-in aggregate and pulls each lagging, pullable,
// not-backing-off source once.
func (p *puller) scan() {
	type target struct {
		key    string
		id     string // tenant-local id, the path segment on the follower
		agg    *streamhull.FanInHull
		source string
		addr   string
	}
	now := time.Now()
	var targets []target
	p.s.mu.RLock()
	for key, st := range p.s.streams {
		agg, ok := st.summary().(*streamhull.FanInHull)
		if !ok {
			continue
		}
		_, id := splitTenant(key)
		for _, src := range agg.Sources() {
			if src.Addr == "" || now.Sub(src.LastPush) < p.s.cfg.PullAfter {
				continue
			}
			targets = append(targets, target{key: key, id: id, agg: agg, source: src.Name, addr: src.Addr})
		}
	}
	p.s.mu.RUnlock()
	for _, t := range targets {
		if !p.due(pullKey(t.key, t.source), now) {
			continue
		}
		p.pullOne(t.key, t.id, t.agg, t.source, t.addr)
	}
}

// due consults the backoff gate for one source without mutating it.
func (p *puller) due(key string, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[key]
	return !ok || !now.Before(st.nextTry)
}

// pullOne fetches one source's snapshot from its advertised address and
// applies it as a wall-clock-stamped full push.
func (p *puller) pullOne(key, id string, agg *streamhull.FanInHull, source, addr string) {
	sp := p.s.tracer.StartSpan("fanin.pull", "")
	sp.SetAttr("stream", id)
	sp.SetAttr("source", source)
	err := p.fetchAndApply(sp, id, agg, source, addr)
	if err != nil {
		sp.SetAttr("status", "error")
		sp.End()
		p.s.met.pullErrors.Inc()
		backoff := p.recordFailure(pullKey(key, source))
		p.s.logger.Warn("fanin: pull from lagging source failed",
			"stream", id, "source", source, "addr", addr,
			"backoff", backoff.Round(time.Millisecond), "err", err)
		return
	}
	sp.SetAttr("status", "ok")
	sp.End()
	p.s.met.pullsTotal.Inc()
	p.recordSuccess(pullKey(key, source))
	p.s.logger.Info("fanin: pulled lagging source",
		"stream", id, "source", source, "addr", addr)
}

func (p *puller) fetchAndApply(sp *trace.Span, id string, agg *streamhull.FanInHull, source, addr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	u := fmt.Sprintf("%s/v1/streams/%s/snapshot", addr, url.PathEscape(id))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if tok := p.s.cfg.PullToken; tok != "" {
		req.Header.Set("Authorization", "Bearer "+tok)
	}
	if tp := sp.Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, p.s.cfg.MaxBodyBytes))
	if err != nil {
		return err
	}
	snap, err := streamhull.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	// The wall-clock stamp supersedes the source's stale contribution and
	// deliberately moves its epoch, forcing the follower's next delta to
	// resync (see the package comment above).
	return agg.Push(source, uint64(time.Now().UnixNano()), snap)
}

// recordFailure doubles the source's backoff (starting from the scan
// interval, capped at a minute) and returns the wait.
func (p *puller) recordFailure(key string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[key]
	if !ok {
		st = &pullState{}
		p.state[key] = st
	}
	st.failures++
	backoff := p.interval() << min(st.failures, 8)
	if backoff > time.Minute {
		backoff = time.Minute
	}
	st.nextTry = time.Now().Add(backoff)
	return backoff
}

func (p *puller) recordSuccess(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[key]
	if !ok {
		st = &pullState{}
		p.state[key] = st
	}
	st.pulls++
	st.failures = 0
	st.lastPull = time.Now()
	st.nextTry = time.Time{}
}

// sourcePulls reports one source's pull bookkeeping for the stream
// detail response (zeroes when the source was never pulled).
func (p *puller) sourcePulls(streamKey, source string) (pulls uint64, last time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[pullKey(streamKey, source)]; ok {
		return st.pulls, st.lastPull
	}
	return 0, time.Time{}
}
