package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/store"
	"github.com/streamgeom/streamhull/internal/wal"
	"github.com/streamgeom/streamhull/internal/workload"
)

// coldConfig is durableConfig plus a residency cap small enough that
// the tests constantly evict and rehydrate.
func coldConfig(dir string, maxResident int) Config {
	cfg := durableConfig(dir)
	cfg.MaxResident = maxResident
	return cfg
}

// warmCount reports how many streams currently hold a live summary.
func warmCount(s *Server) int { return s.ResidentStreams() }

// TestColdTierBitExact is the cold tier's core contract: with a
// residency cap of 1, every one of five streams is evicted and
// rehydrated repeatedly as queries cycle through them, and every answer
// must be bit-identical to a twin server that holds all five warm.
func TestColdTierBitExact(t *testing.T) {
	ids := []string{"c0", "c1", "c2", "c3", "c4"}
	feed := func(ts *httptest.Server) {
		for i, id := range ids {
			pts := workload.Take(workload.Ellipse(int64(100+i), 1, 0.5+0.1*float64(i), 0.3), 2000)
			for j := 0; j < len(pts); j += 400 {
				ingest(t, ts, id, pts[j:j+400])
			}
		}
	}
	// Both servers checkpoint at every 400-point batch boundary, so the
	// adaptive re-base (which checkpoints always perform, eviction or
	// not) happens at identical stream positions on both sides and the
	// twin comparison is bit-exact. An eviction then finds sinceCkpt == 0
	// and adds no extra checkpoint of its own.
	coldCfg := coldConfig(t.TempDir(), 1)
	coldCfg.CheckpointEvery = 400
	cold := mustNew(t, coldCfg)
	defer cold.Close()
	tsCold := httptest.NewServer(cold)
	defer tsCold.Close()
	warmCfg := durableConfig(t.TempDir())
	warmCfg.CheckpointEvery = 400
	warm := mustNew(t, warmCfg)
	defer warm.Close()
	tsWarm := httptest.NewServer(warm)
	defer tsWarm.Close()
	feed(tsCold)
	feed(tsWarm)

	// Two full passes over all streams: the cap of 1 forces each query
	// to rehydrate its stream and evict the previous one.
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids {
			gotVs, gotN := hullVertices(t, tsCold, id)
			wantVs, wantN := hullVertices(t, tsWarm, id)
			if gotN != wantN {
				t.Fatalf("pass %d %s: n = %v, want %v", pass, id, gotN, wantN)
			}
			sameVertices(t, gotVs, wantVs)
			for _, q := range []string{"type=diameter", "type=width", "type=extent&theta=0.7", "type=circle"} {
				codeA, respA := do(t, "GET", tsCold.URL+"/v1/streams/"+id+"/query?"+q, nil)
				codeB, respB := do(t, "GET", tsWarm.URL+"/v1/streams/"+id+"/query?"+q, nil)
				if codeA != http.StatusOK || codeB != http.StatusOK {
					t.Fatalf("%s %s: %d vs %d", id, q, codeA, codeB)
				}
				ja, _ := json.Marshal(respA)
				jb, _ := json.Marshal(respB)
				if string(ja) != string(jb) {
					t.Fatalf("%s %s: rehydrated answer %s, never-evicted twin %s", id, q, ja, jb)
				}
			}
		}
		if w := warmCount(cold); w > 2 {
			t.Fatalf("pass %d: %d streams warm under MaxResident=1", pass, w)
		}
	}
	// The eviction/rehydration counters must actually have moved — the
	// comparison above is vacuous if nothing ever went cold.
	if cold.met.evictions.Value() < 5 || cold.met.rehydrations.Value() < 5 {
		t.Fatalf("evictions=%v rehydrations=%v; cold tier never engaged",
			cold.met.evictions.Value(), cold.met.rehydrations.Value())
	}
	// Cold streams stay visible (with their preserved counters) in the
	// listing without being rehydrated by it.
	before := cold.met.rehydrations.Value()
	code, list := do(t, "GET", tsCold.URL+"/v1/streams", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	streams := list["streams"].([]any)
	if len(streams) != len(ids) {
		t.Fatalf("listing shows %d streams, want %d", len(streams), len(ids))
	}
	coldSeen := 0
	for _, raw := range streams {
		entry := raw.(map[string]any)
		if entry["n"].(float64) != 2000 {
			t.Fatalf("listing entry %v lost its point count", entry["id"])
		}
		if entry["cold"] == true {
			coldSeen++
		}
	}
	if coldSeen < len(ids)-2 {
		t.Fatalf("listing marks %d streams cold under MaxResident=1, want ≥%d", coldSeen, len(ids)-2)
	}
	if cold.met.rehydrations.Value() != before {
		t.Fatal("GET /v1/streams rehydrated cold streams")
	}
}

// TestColdTierIngestRehydrates: writes, not just reads, must warm a
// cold stream — and the points ingested after rehydration survive a
// restart along with the pre-eviction ones.
func TestColdTierIngestRehydrates(t *testing.T) {
	dir := t.TempDir()
	cfg := coldConfig(dir, 1)
	// Checkpoint (and so re-base) at every batch: the state captured
	// below then always sits on a checkpoint boundary, which is the
	// state a restart reproduces bit-for-bit.
	cfg.CheckpointEvery = 200
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv)

	a := workload.Take(workload.Disk(7, geom.Pt(0, 0), 1), 1000)
	b := workload.Take(workload.Disk(8, geom.Pt(5, 5), 1), 1000)
	ingest(t, ts, "ia", a[:600])
	ingest(t, ts, "ib", b) // evicts ia under the cap of 1
	ingest(t, ts, "ia", a[600:])
	wantVs, wantN := hullVertices(t, ts, "ia")
	if wantN != 1000 {
		t.Fatalf("post-rehydration ingest lost points: n = %v", wantN)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustNew(t, cfg)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	gotVs, gotN := hullVertices(t, ts2, "ia")
	if gotN != wantN {
		t.Fatalf("restart after cold-tier ingest: n = %v, want %v", gotN, wantN)
	}
	sameVertices(t, gotVs, wantVs)
}

// TestColdTierCrashMidLifecycle is the kill -9 half of the cold-tier
// story, extending the PR 2 crash harness: the server dies (no Close)
// with some streams evicted, some freshly rehydrated, and one evicted
// AND re-ingested — recovery must rebuild all of them bit-exactly. An
// eviction's checkpoint and a rehydration's load are the two on-disk
// transitions this exercises; the abandon lands between/after them at
// whatever state the syscalls left.
func TestColdTierCrashMidLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := coldConfig(dir, 1)
	srvA := mustNew(t, cfg)
	tsA := httptest.NewServer(srvA)

	pts := workload.Take(workload.DriftBurst(31, 1, geom.Pt(0.02, 0.01), 500, 80, 3), 3000)
	ingest(t, tsA, "k0", pts[:1500])
	ingest(t, tsA, "k1", pts[1500:]) // evicts k0 (checkpoint sealed mid-flight)
	hullVertices(t, tsA, "k0")       // rehydrates k0, evicts k1
	ingest(t, tsA, "k0", pts[2800:]) // post-rehydration tail append
	want0, n0 := hullVertices(t, tsA, "k0")
	want1, n1 := hullVertices(t, tsA, "k1") // rehydrates k1, evicts k0 again
	tsA.Close()                             // srvA.Close() deliberately never runs

	srvB := mustNew(t, cfg)
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	got0, gn0 := hullVertices(t, tsB, "k0")
	if gn0 != n0 {
		t.Fatalf("k0 recovered n = %v, want %v", gn0, n0)
	}
	sameVertices(t, got0, want0)
	got1, gn1 := hullVertices(t, tsB, "k1")
	if gn1 != n1 {
		t.Fatalf("k1 recovered n = %v, want %v", gn1, n1)
	}
	sameVertices(t, got1, want1)
}

// TestColdTierConcurrency hammers a cap-1 server with concurrent reads,
// writes, listings and pair queries across four streams, so evictions
// and rehydrations constantly race each other and the request paths.
// Run under -race this is the cold tier's data-race test; the final
// checks prove no points were lost along the way.
func TestColdTierConcurrency(t *testing.T) {
	srv := mustNew(t, coldConfig(t.TempDir(), 1))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ids := []string{"h0", "h1", "h2", "h3"}
	const rounds = 30
	var wg sync.WaitGroup
	for w, id := range ids {
		wg.Add(1)
		go func(w int, id string) {
			defer wg.Done()
			pts := workload.Take(workload.Disk(int64(w), geom.Pt(float64(w), 0), 1), rounds*20)
			for r := 0; r < rounds; r++ {
				ingest(t, ts, id, pts[r*20:(r+1)*20])
				if code, _ := do(t, "GET", ts.URL+"/v1/streams/"+id+"/hull", nil); code != http.StatusOK {
					t.Errorf("%s hull: %d", id, code)
					return
				}
				other := ids[(w+1+r)%len(ids)]
				code, _ := do(t, "GET",
					ts.URL+"/v1/pairs/query?a="+id+"&b="+other+"&type=distance", nil)
				// 409 empty_streams is legitimate early on, before the other
				// worker's first batch landed.
				if code != http.StatusOK && code != http.StatusConflict {
					t.Errorf("pair %s/%s: %d", id, other, code)
					return
				}
				if r%7 == 0 {
					do(t, "GET", ts.URL+"/v1/streams?limit=2", nil)
				}
			}
		}(w, id)
	}
	wg.Wait()
	for _, id := range ids {
		if _, n := hullVertices(t, ts, id); n != rounds*20 {
			t.Fatalf("%s: n = %v after the hammer, want %d", id, n, rounds*20)
		}
	}
}

// TestListPagination walks the paginated listing and checks the pages
// tile the full listing exactly, in order, without duplicates — and
// that the unpaginated response is unchanged (no next_cursor field).
func TestListPagination(t *testing.T) {
	ts := newTestServer(t)
	var want []string
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("pg%02d", i)
		if code, _ := do(t, "PUT", ts.URL+"/v1/streams/"+id+"?algo=adaptive&r=16", nil); code != http.StatusCreated {
			t.Fatalf("create %s", id)
		}
		want = append(want, id)
	}
	code, full := do(t, "GET", ts.URL+"/v1/streams", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if _, has := full["next_cursor"]; has {
		t.Fatal("unpaginated listing grew a next_cursor")
	}
	if n := len(full["streams"].([]any)); n != 10 {
		t.Fatalf("full listing has %d streams", n)
	}

	var got []string
	cursor := ""
	pages := 0
	for {
		url := ts.URL + "/v1/streams?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		code, page := do(t, "GET", url, nil)
		if code != http.StatusOK {
			t.Fatalf("page %d: %d", pages, code)
		}
		for _, raw := range page["streams"].([]any) {
			got = append(got, raw.(map[string]any)["id"].(string))
		}
		pages++
		next, ok := page["next_cursor"].(string)
		if !ok {
			break
		}
		cursor = next
		if pages > 10 {
			t.Fatal("pagination does not terminate")
		}
	}
	if pages != 4 { // 3+3+3+1
		t.Fatalf("walked %d pages, want 4", pages)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("pages tile to %v, want %v", got, want)
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/streams?limit=nope", nil); code != http.StatusBadRequest {
		t.Fatal("bad limit accepted")
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/streams?limit=-2", nil); code != http.StatusBadRequest {
		t.Fatal("negative limit accepted")
	}
}

// TestAsyncRecoveryReadiness: with AsyncRecovery the constructor
// returns immediately, /readyz (and the API) answer 503 until the
// background recovery finishes, and everything serves normally after.
func TestAsyncRecoveryReadiness(t *testing.T) {
	dir := t.TempDir()
	seed := mustNew(t, durableConfig(dir))
	tsSeed := httptest.NewServer(seed)
	for i := 0; i < 5; i++ {
		ingest(t, tsSeed, fmt.Sprintf("ar%d", i),
			workload.Take(workload.Disk(int64(i), geom.Pt(float64(i), 0), 1), 500))
	}
	want := map[string]float64{}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("ar%d", i)
		_, n := hullVertices(t, tsSeed, id)
		want[id] = n
	}
	tsSeed.Close()
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := durableConfig(dir)
	cfg.AsyncRecovery = true
	srv := mustNew(t, cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			break
		}
		// While starting, both /readyz and the API report progress.
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
			if body["status"] != "starting" {
				t.Fatalf("unready /readyz body = %v", body)
			}
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("recovery never finished")
		}
		time.Sleep(time.Millisecond)
	}
	for id, n := range want {
		if _, got := hullVertices(t, ts, id); got != n {
			t.Fatalf("%s after async recovery: n = %v, want %v", id, got, n)
		}
	}
}

// TestHealthStartingProgress pins the /readyz progress body itself
// (the server-level test above can only observe it racily).
func TestMaxResidentRequiresStore(t *testing.T) {
	if _, err := New(Config{MaxResident: 4}); err == nil {
		t.Fatal("MaxResident without storage accepted")
	}
}

// TestGoldenPreStoreLayout hand-builds a stream directory exactly as
// the pre-store server laid it out — meta.json sidecar plus a wal.Log
// with a checkpoint and a live tail, under the percent-encoded
// directory name — and proves today's fswal path opens it unchanged.
func TestGoldenPreStoreLayout(t *testing.T) {
	if !fswalLayout() {
		t.Skip("the golden layout is fswal's")
	}
	dir := t.TempDir()
	streamDir := filepath.Join(dir, "legacy%2Fstream") // key "legacy/stream": tenant "legacy"
	if err := os.MkdirAll(streamDir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec := streamhull.Spec{Kind: streamhull.KindAdaptive, R: 16}
	meta, err := streamhull.MetaForSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.SaveMeta(streamDir, meta); err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(streamDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.Take(workload.Ellipse(77, 1, 0.6, 0.25), 900)
	sum := streamhull.NewAdaptive(16)
	if _, err := sum.InsertBatch(pts[:600]); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(pts[:600]); err != nil {
		t.Fatal(err)
	}
	snap, err := sum.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	rebased, err := streamhull.SummaryFromSnapshot(sum.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebased.InsertBatch(pts[600:]); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(pts[600:]); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	srv := mustNew(t, durableConfig(dir))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// The tenant-qualified key recovered from the directory name lands
	// in tenant "legacy"'s namespace; the root tenant must not see it.
	code, list := do(t, "GET", ts.URL+"/v1/streams", nil)
	if code != http.StatusOK || len(list["streams"].([]any)) != 0 {
		t.Fatalf("root tenant sees the legacy tenant's stream: %v", list)
	}
	st, err := srv.get("legacy", "stream", false)
	if err != nil {
		t.Fatalf("legacy stream not recovered: %v", err)
	}
	qc, err := srv.residentQueries("legacy/stream", st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qc.N() != 900 {
		t.Fatalf("recovered n = %d, want 900", qc.N())
	}
	wantVs := rebased.Hull().Vertices()
	gotVs := qc.Hull().Vertices()
	if len(gotVs) != len(wantVs) {
		t.Fatalf("hull has %d vertices, want %d", len(gotVs), len(wantVs))
	}
	for i := range wantVs {
		if gotVs[i] != wantVs[i] {
			t.Fatalf("vertex %d = %v, want %v", i, gotVs[i], wantVs[i])
		}
	}
}

// TestStoreBackendMismatchRefuses: pointing the server at a data
// directory written by the other backend must fail startup loudly, not
// silently serve an empty stream set.
func TestStoreBackendMismatchRefuses(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DefaultR: 16, DataDir: dir, Sync: wal.SyncNone, StoreBackend: "muxwal"}
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv)
	ingest(t, ts, "m", workload.Take(workload.Disk(3, geom.Point{}, 1), 50))
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.StoreBackend = "fswal"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "muxwal") {
		t.Fatalf("fswal opened a muxwal directory: %v", err)
	}
}

// TestColdTierMemoryBackend runs the evict/rehydrate cycle on the
// in-memory store — the backend CI's smoke test and experiments use —
// via Config.Store injection.
func TestColdTierMemoryBackend(t *testing.T) {
	// CheckpointEvery = batch size: ingest itself re-bases the live
	// summary at the checkpoint, so the captured answer is the
	// checkpoint's and survives the evict/rehydrate cycle bit-for-bit.
	cfg := Config{DefaultR: 16, Store: store.NewMemory(), MaxResident: 1, CheckpointEvery: 300}
	srv := mustNew(t, cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	a := workload.Take(workload.Disk(1, geom.Pt(0, 0), 1), 300)
	b := workload.Take(workload.Disk(2, geom.Pt(9, 9), 1), 300)
	ingest(t, ts, "ma", a)
	wantVs, _ := hullVertices(t, ts, "ma")
	ingest(t, ts, "mb", b) // evicts ma
	if w := warmCount(srv); w != 1 {
		t.Fatalf("%d warm streams under cap 1", w)
	}
	gotVs, n := hullVertices(t, ts, "ma") // rehydrates ma
	if n != 300 {
		t.Fatalf("rehydrated n = %v", n)
	}
	sameVertices(t, gotVs, wantVs)
}
