package server

import (
	"fmt"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/internal/trace"
)

// The cold tier: with Config.MaxResident set, only that many streams
// keep a live summary (and its read cache) in memory. The rest are
// parked cold — their state sealed into the store as an O(r) checkpoint
// (Hershberger–Suri §4–§5: any summary compacts to a few hundred bytes
// that fully replace its log prefix), their appender closed, their
// summary and caches dropped. A cold stream is indistinguishable from a
// warm one to callers: any touch (ingest, hull, query, snapshot, pair
// query) rehydrates it transparently with one store Load.
//
// Bookkeeping:
//
//   - st.sum == nil (equivalently st.cache.Load() == nil) is the cold
//     state; st.coldN/st.coldSample preserve the listing counters so
//     GET /v1/streams never rehydrates anything.
//   - s.resident tracks evictable warm streams for the LRU scan, with
//     last-touch times kept in per-stream atomics so reads never take a
//     lock to record activity. Fan-in aggregates are pinned warm: their
//     contributions are soft state that exists only in memory, so
//     evicting one would silently discard follower pushes.
//   - Rehydration is singleflight by construction: it runs under st.mu,
//     so concurrent touches of one cold stream do exactly one Load and
//     the rest find the summary installed when they get the lock.
//   - Eviction holds only the victim's st.mu (never s.mu, never two
//     stream locks), so it can run inline on the request that exceeded
//     the cap without stalling other streams.
//   - Tenant quota accounting is untouched by eviction: a cold stream's
//     points are still resident in the store and still the tenant's.

// touch records stream activity for the cold tier's LRU clock.
func (s *Server) touch(st *stream) {
	st.lastTouch.Store(time.Now().UnixNano())
}

// admit registers a warm stream as an eviction candidate. Fan-in
// aggregates are never admitted (pinned warm); in-memory servers have
// no cold tier at all.
func (s *Server) admit(key string, st *stream) {
	if s.store == nil || st.spec.Kind == streamhull.KindFanIn {
		return
	}
	s.resMu.Lock()
	s.resident[key] = st
	s.resMu.Unlock()
}

// dropResident removes a stream from the eviction candidate set.
func (s *Server) dropResident(key string) {
	s.resMu.Lock()
	delete(s.resident, key)
	s.resMu.Unlock()
}

// residentQueries returns the stream's epoch-cached read state,
// rehydrating first when the stream is parked cold. The warm path is
// one atomic load — exactly the pre-cold-tier read path.
func (s *Server) residentQueries(key string, st *stream, sp *trace.Span) (*streamhull.QueryCache, error) {
	s.touch(st)
	for {
		if qc := st.cache.Load(); qc != nil {
			return qc, nil
		}
		if _, err := s.residentSummary(key, st, sp); err != nil {
			return nil, err
		}
		// An eviction can race in between the rehydrate and the reload;
		// loop until a load observes a live cache.
	}
}

// residentSummary returns the stream's live summary, rehydrating first
// when the stream is parked cold, and enforces the residency cap after
// a rehydration may have pushed the warm set over it.
func (s *Server) residentSummary(key string, st *stream, sp *trace.Span) (streamhull.Summary, error) {
	s.touch(st)
	st.mu.Lock()
	if st.sum == nil {
		if err := s.rehydrateLocked(key, st, sp); err != nil {
			st.mu.Unlock()
			return nil, err
		}
	}
	sum := st.sum
	st.mu.Unlock()
	s.enforceCap(sp)
	return sum, nil
}

// rehydrateLocked rebuilds a cold stream's summary from the store —
// checkpoint plus any surviving log tail — and reopens its appender.
// Caller holds st.mu, which is what makes rehydration singleflight.
func (s *Server) rehydrateLocked(key string, st *stream, sp *trace.Span) error {
	start := time.Now()
	rec, err := s.store.Load(key)
	if err != nil {
		return fmt.Errorf("%w: rehydrating %q: %v", errStorage, key, err)
	}
	app, err := s.store.Open(key)
	if err != nil {
		return fmt.Errorf("%w: reopening log for %q: %v", errStorage, key, err)
	}
	if wh, ok := rec.Summary.(*streamhull.WindowedHull); ok {
		// Points that aged out while the stream was cold expire now;
		// the background sweeper takes over again from here.
		wh.Expire()
		if wh.ByTime() {
			s.startSweeper()
		}
	}
	st.setSummary(rec.Summary)
	st.app = app
	st.sinceCkpt = rec.Points
	st.coldN, st.coldSample = 0, 0
	s.admit(key, st)
	dur := time.Since(start)
	s.met.rehydrations.Inc()
	s.met.rehydrateSeconds.ObserveExemplar(dur.Seconds(), sp.TraceID())
	if sp != nil {
		sp.ObserveStage("store.rehydrate", dur)
	}
	s.logger.Debug("store: rehydrated cold stream",
		"stream", key, "tenant", st.tenant, "points", rec.Points,
		"dur_ms", dur.Milliseconds())
	return nil
}

// enforceCap evicts least-recently-touched streams until the warm set
// fits MaxResident again. Runs inline on whichever request grew the
// warm set; each iteration holds only the victim's lock.
func (s *Server) enforceCap(sp *trace.Span) {
	if s.store == nil || s.cfg.MaxResident <= 0 {
		return
	}
	for {
		key, st := s.pickVictim()
		if st == nil {
			return
		}
		s.evict(key, st, sp)
	}
}

// pickVictim returns the least-recently-touched eviction candidate, or
// nil when the warm set already fits the cap.
func (s *Server) pickVictim() (string, *stream) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if len(s.resident) <= s.cfg.MaxResident {
		return "", nil
	}
	var (
		vKey string
		vSt  *stream
		vAt  int64
	)
	for key, st := range s.resident {
		at := st.lastTouch.Load()
		if vSt == nil || at < vAt {
			vKey, vSt, vAt = key, st, at
		}
	}
	return vKey, vSt
}

// evict parks one stream cold: seals its un-checkpointed tail (for
// checkpointable kinds — exact/partial/partitioned keep their full log
// and replay it on rehydration), preserves the listing counters, drops
// the summary and read cache, closes the appender, and purges pair
// answers keyed on the retired cache. Quota bytes are NOT released:
// the points are still durably resident and still the tenant's.
func (s *Server) evict(key string, st *stream, sp *trace.Span) {
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	st.mu.Lock()
	if st.sum == nil {
		// Lost a race with another evictor; just make sure the candidate
		// set agrees.
		st.mu.Unlock()
		s.dropResident(key)
		return
	}
	if st.sinceCkpt > 0 {
		s.checkpointLocked(key, st)
	}
	st.coldN, st.coldSample = st.sum.N(), st.sum.SampleSize()
	old := st.cache.Load()
	st.sum = nil
	st.cache.Store(nil)
	if st.app != nil {
		if err := st.app.Close(); err != nil {
			s.logger.Error("store: closing evicted stream's log failed",
				"stream", key, "tenant", st.tenant, "err", err)
		}
		st.app = nil
	}
	st.mu.Unlock()
	s.pairs.purge(old)
	s.dropResident(key)
	s.met.evictions.Inc()
	if sp != nil {
		sp.ObserveStage("store.evict", time.Since(t0))
	}
	s.logger.Debug("store: evicted idle stream", "stream", key, "tenant", st.tenant)
}

// ResidentStreams reports how many streams currently hold a warm
// summary — the number the -max-resident cap bounds. Exported for the
// storage experiments and tests.
func (s *Server) ResidentStreams() int {
	warm := 0
	s.mu.RLock()
	for _, st := range s.streams {
		if st.cache.Load() != nil {
			warm++
		}
	}
	s.mu.RUnlock()
	return warm
}

// Evictions reports lifetime cold-tier evictions (the
// streamhull_store_evictions_total counter).
func (s *Server) Evictions() float64 { return s.met.evictions.Value() }
