package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/streamgeom/streamhull/internal/auth"
)

// Service-layer tests: bearer auth, tenant namespacing, quotas, rate
// limiting, the uniform error envelope, and the observability plane.

// testTokens is the two-tenant credential set the matrix tests use.
const testTokens = "acme-admin=acme:all;acme-reader=acme:read;acme-pusher=acme:push;globex-admin=globex:all"

func newAuthServer(t *testing.T, quotas auth.Quotas) *httptest.Server {
	t.Helper()
	provider, err := auth.ParseStaticTokens(testTokens)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mustNew(t, Config{DefaultR: 16, Auth: provider, Quotas: quotas}))
	t.Cleanup(ts.Close)
	return ts
}

// doAuth issues one request with a bearer token, returning the status
// and raw body.
func doAuth(t *testing.T, method, url, token string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestAuthRoleMatrix(t *testing.T) {
	ts := newAuthServer(t, auth.Quotas{})
	// Seed a stream and a fan-in aggregate in acme's namespace.
	if code, body := doAuth(t, "PUT", ts.URL+"/v1/streams/clicks?algo=adaptive&r=8", "acme-admin", nil); code != http.StatusCreated {
		t.Fatalf("seed create: %d %s", code, body)
	}
	if code, body := doAuth(t, "PUT", ts.URL+"/v1/streams/agg", "acme-admin",
		[]byte(`{"kind":"fanin","r":8}`)); code != http.StatusCreated {
		t.Fatalf("seed aggregate: %d %s", code, body)
	}
	if code, body := doAuth(t, "POST", ts.URL+"/v1/streams/clicks/points", "acme-admin",
		[]byte(`{"points":[[0,0],[1,0],[0,1]]}`)); code != http.StatusOK {
		t.Fatalf("seed points: %d %s", code, body)
	}

	pushURL := ts.URL + "/v1/streams/agg/snapshot?source=n1&epoch=%d"
	pushBody := []byte(`{"kind":"adaptive","r":8,"n":1,"angles":[0],"points":[{"X":2,"Y":2}]}`)
	epoch := uint64(0)
	push := func(token string) (int, []byte) {
		epoch++
		return doAuth(t, "POST", fmt.Sprintf(pushURL, epoch), token, pushBody)
	}

	cases := []struct {
		name  string
		token string
		do    func() (int, []byte)
		want  int
	}{
		// No or wrong token: 401 everywhere.
		{"anon read", "", func() (int, []byte) { return doAuth(t, "GET", ts.URL+"/v1/streams", "", nil) }, 401},
		{"bad token", "nope", func() (int, []byte) { return doAuth(t, "GET", ts.URL+"/v1/streams", "nope", nil) }, 401},
		{"anon push", "", func() (int, []byte) { return push("") }, 401},

		// Reader: reads pass, writes and pushes 403.
		{"reader list", "acme-reader", func() (int, []byte) { return doAuth(t, "GET", ts.URL+"/v1/streams", "acme-reader", nil) }, 200},
		{"reader hull", "acme-reader", func() (int, []byte) { return doAuth(t, "GET", ts.URL+"/v1/streams/clicks/hull", "acme-reader", nil) }, 200},
		{"reader query", "acme-reader", func() (int, []byte) {
			return doAuth(t, "GET", ts.URL+"/v1/streams/clicks/query?type=diameter", "acme-reader", nil)
		}, 200},
		{"reader ingest", "acme-reader", func() (int, []byte) {
			return doAuth(t, "POST", ts.URL+"/v1/streams/clicks/points", "acme-reader", []byte(`{"points":[[3,3]]}`))
		}, 403},
		{"reader create", "acme-reader", func() (int, []byte) {
			return doAuth(t, "PUT", ts.URL+"/v1/streams/more?algo=adaptive&r=8", "acme-reader", nil)
		}, 403},
		{"reader delete", "acme-reader", func() (int, []byte) {
			return doAuth(t, "DELETE", ts.URL+"/v1/streams/clicks", "acme-reader", nil)
		}, 403},
		{"reader push", "acme-reader", func() (int, []byte) { return push("acme-reader") }, 403},

		// Pusher: source pushes pass, plain writes and reads 403. A
		// pusher may create fan-in aggregates (first contact) but not
		// regular streams.
		{"pusher push", "acme-pusher", func() (int, []byte) { return push("acme-pusher") }, 200},
		{"pusher list", "acme-pusher", func() (int, []byte) { return doAuth(t, "GET", ts.URL+"/v1/streams", "acme-pusher", nil) }, 403},
		{"pusher ingest", "acme-pusher", func() (int, []byte) {
			return doAuth(t, "POST", ts.URL+"/v1/streams/clicks/points", "acme-pusher", []byte(`{"points":[[3,3]]}`))
		}, 403},
		{"pusher create fanin", "acme-pusher", func() (int, []byte) {
			return doAuth(t, "PUT", ts.URL+"/v1/streams/agg2", "acme-pusher", []byte(`{"kind":"fanin","r":8}`))
		}, 201},
		{"pusher create regular", "acme-pusher", func() (int, []byte) {
			return doAuth(t, "PUT", ts.URL+"/v1/streams/plain?algo=adaptive&r=8", "acme-pusher", nil)
		}, 403},

		// Cross-tenant: globex shares ids without collision and cannot
		// see acme's streams.
		{"other tenant same id", "globex-admin", func() (int, []byte) {
			return doAuth(t, "PUT", ts.URL+"/v1/streams/clicks?algo=adaptive&r=8", "globex-admin", nil)
		}, 201},
		{"other tenant detail", "globex-admin", func() (int, []byte) {
			return doAuth(t, "GET", ts.URL+"/v1/streams/agg", "globex-admin", nil)
		}, 404},
		{"other tenant push", "globex-admin", func() (int, []byte) { return push("globex-admin") }, 404},
	}
	for _, c := range cases {
		if code, body := c.do(); code != c.want {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, code, c.want, body)
		}
	}

	// globex's list shows only its own stream.
	_, body := doAuth(t, "GET", ts.URL+"/v1/streams", "globex-admin", nil)
	var list struct {
		Streams []struct {
			ID string `json:"id"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list body: %v", err)
	}
	if len(list.Streams) != 1 || list.Streams[0].ID != "clicks" {
		t.Errorf("globex list = %+v, want exactly its own clicks", list.Streams)
	}
}

// TestRejectedPushNeverMutates is the acceptance check: an
// unauthenticated or wrong-tenant fan-in push is rejected and the
// aggregate's state does not move.
func TestRejectedPushNeverMutates(t *testing.T) {
	ts := newAuthServer(t, auth.Quotas{})
	if code, body := doAuth(t, "PUT", ts.URL+"/v1/streams/agg", "acme-admin",
		[]byte(`{"kind":"fanin","r":8}`)); code != http.StatusCreated {
		t.Fatalf("create aggregate: %d %s", code, body)
	}
	push := []byte(`{"kind":"adaptive","r":8,"n":3,"angles":[0,2,4],"points":[{"X":0,"Y":0},{"X":1,"Y":0},{"X":0,"Y":1}]}`)
	if code, _ := doAuth(t, "POST", ts.URL+"/v1/streams/agg/snapshot?source=n1&epoch=1", "", push); code != http.StatusUnauthorized {
		t.Fatalf("anonymous push: %d, want 401", code)
	}
	if code, _ := doAuth(t, "POST", ts.URL+"/v1/streams/agg/snapshot?source=n1&epoch=2", "globex-admin", push); code != http.StatusNotFound {
		t.Fatalf("wrong-tenant push: %d, want 404 (agg is not in globex's namespace)", code)
	}
	if code, _ := doAuth(t, "POST", ts.URL+"/v1/streams/agg/snapshot?source=n1&epoch=3", "acme-reader", push); code != http.StatusForbidden {
		t.Fatalf("read-only push: %d, want 403", code)
	}
	code, body := doAuth(t, "GET", ts.URL+"/v1/streams/agg", "acme-admin", nil)
	if code != http.StatusOK {
		t.Fatalf("detail: %d %s", code, body)
	}
	var detail struct {
		N int `json:"n"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.N != 0 {
		t.Errorf("aggregate n = %d after rejected pushes, want 0", detail.N)
	}
}

func TestStreamAndByteQuotas(t *testing.T) {
	ts := newAuthServer(t, auth.Quotas{MaxStreams: 1, MaxBytes: 64})
	if code, body := doAuth(t, "PUT", ts.URL+"/v1/streams/a?algo=adaptive&r=8", "acme-admin", nil); code != http.StatusCreated {
		t.Fatalf("first create: %d %s", code, body)
	}
	code, body := doAuth(t, "PUT", ts.URL+"/v1/streams/b?algo=adaptive&r=8", "acme-admin", nil)
	if code != http.StatusInsufficientStorage {
		t.Fatalf("second create: %d %s, want 507", code, body)
	}
	assertEnvelope(t, body, "quota_streams")
	// Another tenant is unaffected.
	if code, _ := doAuth(t, "PUT", ts.URL+"/v1/streams/b?algo=adaptive&r=8", "globex-admin", nil); code != http.StatusCreated {
		t.Errorf("other tenant blocked by acme's stream quota: %d", code)
	}
	// 64 bytes = 4 points; a 5-point batch busts the byte quota.
	code, body = doAuth(t, "POST", ts.URL+"/v1/streams/a/points", "acme-admin",
		[]byte(`{"points":[[0,0],[1,0],[0,1],[1,1],[2,2]]}`))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-quota ingest: %d %s, want 413", code, body)
	}
	assertEnvelope(t, body, "quota_bytes")
	// An in-quota batch still lands.
	if code, body := doAuth(t, "POST", ts.URL+"/v1/streams/a/points", "acme-admin",
		[]byte(`{"points":[[0,0],[1,0],[0,1]]}`)); code != http.StatusOK {
		t.Fatalf("in-quota ingest: %d %s", code, body)
	}
	// Deleting the stream returns slot and bytes.
	if code, _ := doAuth(t, "DELETE", ts.URL+"/v1/streams/a", "acme-admin", nil); code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if code, body := doAuth(t, "PUT", ts.URL+"/v1/streams/b?algo=adaptive&r=8", "acme-admin", nil); code != http.StatusCreated {
		t.Errorf("create after delete: %d %s (slot not returned?)", code, body)
	}
	if code, body := doAuth(t, "POST", ts.URL+"/v1/streams/b/points", "acme-admin",
		[]byte(`{"points":[[0,0],[1,0],[0,1],[1,1]]}`)); code != http.StatusOK {
		t.Errorf("full-quota ingest after delete: %d %s (bytes not returned?)", code, body)
	}
}

func TestRateLimitBurst(t *testing.T) {
	// Slow refill so the test never races a real token drip; the open
	// provider means the root tenant is the one being limited.
	ts := httptest.NewServer(mustNew(t, Config{DefaultR: 16,
		Quotas: auth.Quotas{RatePerSec: 0.5, Burst: 3}}))
	t.Cleanup(ts.Close)

	limited := 0
	var retryAfter string
	for i := 0; i < 6; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/streams", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			limited++
			retryAfter = resp.Header.Get("Retry-After")
		default:
			t.Fatalf("request %d: %d", i, resp.StatusCode)
		}
	}
	if limited != 3 {
		t.Errorf("burst of 6 at burst-capacity 3: %d limited, want 3", limited)
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", retryAfter)
	}
}

// assertEnvelope checks a non-2xx body parses as the uniform
// {"error": ..., "code": ...} envelope with the expected code.
func assertEnvelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body %s: %v", body, err)
	}
	if env.Error == "" {
		t.Errorf("error body %s: empty error message", body)
	}
	if env.Code != wantCode {
		t.Errorf("error body %s: code = %q, want %q", body, env.Code, wantCode)
	}
}

// TestErrorEnvelopeEveryEndpoint drives one failing request through
// each endpoint and asserts the response is always the same
// machine-readable envelope.
func TestErrorEnvelopeEveryEndpoint(t *testing.T) {
	open := newTestServer(t)
	// Seed: an adaptive stream with points, an empty one, an aggregate.
	ingestSeed := func() {
		for _, seed := range [][2]string{
			{"/v1/streams/full?algo=adaptive&r=8", `PUT`},
			{"/v1/streams/none?algo=adaptive&r=8", `PUT`},
		} {
			if code, body := doAuth(t, seed[1], open.URL+seed[0], "", nil); code != http.StatusCreated {
				t.Fatalf("seed %s: %d %s", seed[0], code, body)
			}
		}
		if code, _ := doAuth(t, "POST", open.URL+"/v1/streams/full/points", "",
			[]byte(`{"points":[[0,0],[1,0],[0,1]]}`)); code != http.StatusOK {
			t.Fatal("seed points")
		}
		if code, _ := doAuth(t, "PUT", open.URL+"/v1/streams/agg", "",
			[]byte(`{"kind":"fanin","r":8}`)); code != http.StatusCreated {
			t.Fatal("seed aggregate")
		}
		if code, _ := doAuth(t, "POST", open.URL+"/v1/streams/agg/snapshot?source=n1&epoch=5", "",
			[]byte(`{"kind":"adaptive","r":8,"n":1,"angles":[0],"points":[{"X":2,"Y":2}]}`)); code != http.StatusOK {
			t.Fatal("seed push")
		}
	}
	ingestSeed()

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantTag  string
	}{
		{"create bad spec", "PUT", "/v1/streams/x?algo=wizard", "", 400, "bad_request"},
		{"create duplicate", "PUT", "/v1/streams/full?algo=adaptive&r=8", "", 409, "conflict"},
		{"delete missing", "DELETE", "/v1/streams/ghost", "", 404, "not_found"},
		{"detail missing", "GET", "/v1/streams/ghost", "", 404, "not_found"},
		{"points bad body", "POST", "/v1/streams/full/points", `{"points":`, 400, "bad_request"},
		{"points into aggregate", "POST", "/v1/streams/agg/points", `{"points":[[0,0]]}`, 409, "conflict"},
		{"hull missing", "GET", "/v1/streams/ghost/hull", "", 404, "not_found"},
		{"query missing", "GET", "/v1/streams/ghost/query?type=diameter", "", 404, "not_found"},
		{"query bad type", "GET", "/v1/streams/full/query?type=volume", "", 400, "bad_request"},
		{"snapshot missing", "GET", "/v1/streams/ghost/snapshot", "", 404, "not_found"},
		{"restore bad body", "POST", "/v1/streams/x/snapshot", `{"kind":`, 400, "bad_request"},
		{"push bad epoch", "POST", "/v1/streams/agg/snapshot?source=n1&epoch=soon", "{}", 400, "bad_request"},
		{"push stale epoch", "POST", "/v1/streams/agg/snapshot?source=n1&epoch=4",
			`{"kind":"adaptive","r":8,"n":1,"angles":[0],"points":[{"X":2,"Y":2}]}`, 409, "stale_epoch"},
		{"push into non-aggregate", "POST", "/v1/streams/full/snapshot?source=n1&epoch=9", `{}`, 409, "conflict"},
		{"drop source missing stream", "DELETE", "/v1/streams/ghost/sources/n1", "", 404, "not_found"},
		{"drop missing source", "DELETE", "/v1/streams/agg/sources/ghost", "", 404, "not_found"},
		{"pair missing id", "GET", "/v1/pairs/query?a=full&type=distance", "", 400, "bad_request"},
		{"pair missing stream", "GET", "/v1/pairs/query?a=full&b=ghost&type=distance", "", 404, "not_found"},
		{"pair empty stream", "GET", "/v1/pairs/query?a=full&b=none&type=distance", "", 409, "empty_streams"},
		{"pair bad type", "GET", "/v1/pairs/query?a=full&b=full&type=volume", "", 400, "bad_request"},
	}
	for _, c := range cases {
		var body []byte
		if c.body != "" {
			body = []byte(c.body)
		}
		code, got := doAuth(t, c.method, open.URL+c.path, "", body)
		if code != c.wantCode {
			t.Errorf("%s: status = %d, want %d (body %s)", c.name, code, c.wantCode, got)
			continue
		}
		assertEnvelope(t, got, c.wantTag)
	}

	// The authenticated failure shapes use their own server.
	authed := newAuthServer(t, auth.Quotas{})
	code, body := doAuth(t, "GET", authed.URL+"/v1/streams", "", nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("anon list: %d", code)
	}
	assertEnvelope(t, body, "unauthenticated")
	code, body = doAuth(t, "DELETE", authed.URL+"/v1/streams/x", "acme-reader", nil)
	if code != http.StatusForbidden {
		t.Fatalf("reader delete: %d", code)
	}
	assertEnvelope(t, body, "forbidden")
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	ts := newTestServer(t)
	// Generate traffic so the counters have something to show.
	if code, _ := doAuth(t, "POST", ts.URL+"/v1/streams/m/points", "",
		[]byte(`{"points":[[0,0],[1,0],[0,1]]}`)); code != http.StatusOK {
		t.Fatal("seed ingest")
	}
	if code, _ := doAuth(t, "GET", ts.URL+"/v1/streams/m/query?type=diameter", "", nil); code != http.StatusOK {
		t.Fatal("seed query")
	}

	for _, probe := range []string{"/healthz", "/readyz"} {
		code, body := doAuth(t, "GET", ts.URL+probe, "", nil)
		if code != http.StatusOK {
			t.Errorf("%s = %d %s", probe, code, body)
		}
	}

	code, body := doAuth(t, "GET", ts.URL+"/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	page := string(body)
	for _, want := range []string{
		`streamhull_http_requests_total{endpoint="points",code="200"} 1`,
		`streamhull_ingest_points_total{tenant=""} 3`,
		`streamhull_http_request_seconds_bucket`,
		`streamhull_tenant_streams{tenant=""} 1`,
		`streamhull_querycache_reads_total`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// DisableObservability removes the routes.
	dark := httptest.NewServer(mustNew(t, Config{DefaultR: 16, DisableObservability: true}))
	t.Cleanup(dark.Close)
	if code, _ := doAuth(t, "GET", dark.URL+"/metrics", "", nil); code != http.StatusNotFound {
		t.Errorf("disabled /metrics = %d, want 404", code)
	}
}

// TestNotReadyEnvelope pins the API-route 503 during startup recovery
// to the uniform error envelope: every endpoint behind serveAuthed
// answers code "not_ready" with a Retry-After hint and the same
// recovery progress /readyz reports, then recovers to normal service
// the moment recovery finishes.
func TestNotReadyEnvelope(t *testing.T) {
	srv := mustNew(t, Config{DefaultR: 16})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	srv.health.StartRecovery(5)
	srv.health.SetRecovered(2)

	for _, path := range []string{
		"/v1/streams",
		"/v1/streams/x/hull",
		"/v1/pairs/query?a=x&b=y&type=distance",
	} {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while starting: %d %s", path, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("%s while starting: no Retry-After", path)
		}
		assertEnvelope(t, body, "not_ready")
		var env struct {
			Recovery *struct {
				Recovered int `json:"recovered"`
				Total     int `json:"total"`
			} `json:"recovery"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("%s body %s: %v", path, body, err)
		}
		if env.Recovery == nil || env.Recovery.Recovered != 2 || env.Recovery.Total != 5 {
			t.Errorf("%s recovery progress = %+v, want 2/5", path, env.Recovery)
		}
	}

	srv.health.FinishRecovery()
	if code, body := doAuth(t, "GET", ts.URL+"/v1/streams", "", nil); code != http.StatusOK {
		t.Fatalf("list after recovery: %d %s", code, body)
	}
}
