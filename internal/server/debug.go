package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"github.com/streamgeom/streamhull/internal/trace"
)

// The debug plane: the completed-trace ring at /debug/traces and the
// standard pprof profiling endpoints. Both expose request internals
// (stream ids, timings, goroutine stacks), so on the main handler they
// pass through route() gated like the write routes — under auth.None
// they stay open, preserving the historical single-operator behavior,
// and under a real provider only write-role (admin) tokens reach them.
// DebugHandler serves the same routes with no gate for a separate
// localhost-only listener (hullserver's -debug-addr).

// registerDebugRoutes wires the gated debug routes onto the API mux.
func (s *Server) registerDebugRoutes() {
	s.route("GET /debug/traces", "debug_traces", needWrite, s.handleDebugTraces)
	for pattern, h := range pprofHandlers() {
		s.route(pattern, "debug_pprof", needWrite, h)
	}
}

// pprofHandlers maps the standard net/http/pprof endpoints to mux
// patterns (shared by the gated routes and DebugHandler).
func pprofHandlers() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"GET /debug/pprof/":        pprof.Index,
		"GET /debug/pprof/cmdline": pprof.Cmdline,
		"GET /debug/pprof/profile": pprof.Profile,
		"GET /debug/pprof/symbol":  pprof.Symbol,
		"GET /debug/pprof/trace":   pprof.Trace,
	}
}

// handleDebugTraces serves the tracer's completed-trace ring, newest
// first. ?slow=1 filters to traces at or above the slow threshold;
// ?limit=N caps the count. With tracing disabled it reports an empty
// list rather than erroring, so scrapes are safe to leave configured.
func (s *Server) handleDebugTraces(w http.ResponseWriter, req *http.Request) {
	recs := s.tracer.Traces()
	if req.URL.Query().Get("slow") == "1" {
		slow := recs[:0:0]
		for _, rec := range recs {
			if rec.Slow {
				slow = append(slow, rec)
			}
		}
		recs = slow
	}
	if ls := req.URL.Query().Get("limit"); ls != "" {
		if n, err := strconv.Atoi(ls); err == nil && n >= 0 && n < len(recs) {
			recs = recs[:n]
		}
	}
	if recs == nil {
		recs = []*trace.Record{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": recs})
}

// DebugHandler returns the debug routes (traces + pprof) with no auth
// gate, for a separate listener bound to localhost only (hullserver's
// -debug-addr). Mounting this on a public address would expose every
// tenant's stream ids and timings — it exists precisely so the gated
// main-handler routes can stay strict while an operator with shell
// access still gets friction-free profiling.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	for pattern, h := range pprofHandlers() {
		mux.HandleFunc(pattern, h)
	}
	return mux
}
