package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/streamgeom/streamhull/internal/auth"
	"github.com/streamgeom/streamhull/internal/fanin"
	"github.com/streamgeom/streamhull/internal/trace"
	"github.com/streamgeom/streamhull/internal/wal"
)

// Observability tests: stage spans on the durable ingest path, the
// distributed trace across a fan-in push, exemplars on /metrics, and
// the admin gate on the debug plane.

// spanNames collects the child-span names of one trace record.
func spanNames(rec *trace.Record) map[string]bool {
	names := make(map[string]bool, len(rec.Spans))
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestDurablePostTraceStages is the acceptance check for the ingest hot
// path: one durable POST under SyncAlways yields a trace whose child
// spans name every stage — lock wait, batch prefilter, insert, WAL
// append, group-commit fsync wait, checkpoint — plus the middleware's
// auth and rate-limit stages.
func TestDurablePostTraceStages(t *testing.T) {
	tr := trace.New(trace.Config{})
	srv := mustNew(t, Config{
		DefaultR: 8, DataDir: t.TempDir(), Sync: wal.SyncAlways, Tracer: tr,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body := do(t, "POST", ts.URL+"/v1/streams/clicks/points",
		map[string]any{"points": [][2]float64{{0, 0}, {4, 0}, {0, 4}, {1, 1}}}); code != http.StatusOK {
		t.Fatalf("ingest: %d %v", code, body)
	}

	var rec *trace.Record
	for _, r := range tr.Traces() {
		if r.Name == "points" {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Fatalf("no points trace recorded: %v", tr.Traces())
	}
	names := spanNames(rec)
	for _, want := range []string{
		"auth", "ratelimit", "lock_wait", "prefilter", "insert",
		"wal_append", "wal_fsync", "checkpoint",
	} {
		if !names[want] {
			t.Errorf("durable POST trace missing stage span %q (got %v)", want, names)
		}
	}
	if rec.Spans[0].Attrs["stream"] != "clicks" {
		t.Errorf("root span attrs = %v, want stream=clicks", rec.Spans[0].Attrs)
	}

	// The read path materializes through the epoch cache.
	if code, _ := do(t, "GET", ts.URL+"/v1/streams/clicks/hull", nil); code != http.StatusOK {
		t.Fatalf("hull read: %d", code)
	}
	var hullRec *trace.Record
	for _, r := range tr.Traces() {
		if r.Name == "hull" {
			hullRec = r
			break
		}
	}
	if hullRec == nil || !spanNames(hullRec)["cache_materialize"] {
		t.Errorf("hull trace missing cache_materialize span: %+v", hullRec)
	}
}

// TestFanInPushSingleTrace runs a two-process push — a leaf pusher and
// an aggregator server, each with its own tracer — and checks the
// follower's "fanin.push" trace id is the id the aggregator recorded
// for the snapshot POST: one distributed trace, the aggregator's half
// marked remote.
func TestFanInPushSingleTrace(t *testing.T) {
	leafTracer := trace.New(trace.Config{})
	aggTracer := trace.New(trace.Config{})

	leaf := mustNew(t, Config{DefaultR: 8, Tracer: leafTracer})
	lts := httptest.NewServer(leaf)
	defer lts.Close()
	agg := mustNew(t, Config{DefaultR: 8, Tracer: aggTracer})
	ats := httptest.NewServer(agg)
	defer ats.Close()

	if code, body := do(t, "POST", lts.URL+"/v1/streams/clicks/points",
		map[string]any{"points": [][2]float64{{0, 0}, {2, 0}, {0, 2}}}); code != http.StatusOK {
		t.Fatalf("leaf ingest: %d %v", code, body)
	}

	p, err := fanin.NewPusher(fanin.PusherConfig{
		Target: ats.URL, Source: "n1", Interval: time.Second,
		Collect: leaf.StreamSnapshots, Tracer: leafTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PushOnce(context.Background()); err != nil {
		t.Fatalf("PushOnce: %v", err)
	}

	var pushID string
	for _, rec := range leafTracer.Traces() {
		if rec.Name == "fanin.push" {
			pushID = rec.TraceID
			if a := rec.Spans[0].Attrs; a["stream"] != "clicks" || a["source"] != "n1" {
				t.Errorf("push span attrs = %v", a)
			}
		}
	}
	if pushID == "" {
		t.Fatal("leaf recorded no fanin.push trace")
	}
	found := false
	for _, rec := range aggTracer.Traces() {
		if rec.Name != "snapshot_post" {
			continue
		}
		found = true
		if rec.TraceID != pushID {
			t.Errorf("aggregator trace id %q != pushed %q", rec.TraceID, pushID)
		}
		if !rec.Remote || rec.ParentID == "" {
			t.Errorf("aggregator record not stitched to the remote parent: %+v", rec)
		}
	}
	if !found {
		t.Fatal("aggregator recorded no snapshot_post trace")
	}
}

// TestMetricsExemplars checks the latency histogram links buckets to
// trace ids in the OpenMetrics exposition (and only there).
func TestMetricsExemplars(t *testing.T) {
	tr := trace.New(trace.Config{})
	srv := mustNew(t, Config{DefaultR: 8, Tracer: tr})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, _ := do(t, "POST", ts.URL+"/v1/streams/s/points",
		map[string]any{"points": [][2]float64{{0, 0}, {1, 1}}}); code != http.StatusOK {
		t.Fatal("ingest failed")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Fatalf("negotiation failed, Content-Type %q", ct)
	}
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, `# {trace_id="`) {
		t.Error("OpenMetrics exposition carries no exemplars")
	}
	if !strings.Contains(body, "# EOF") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}

	// The classic exposition must stay exemplar-free: they are invalid
	// syntax there and break strict scrapers.
	plain, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	n, _ = plain.Body.Read(buf)
	if strings.Contains(string(buf[:n]), "trace_id=") {
		t.Error("classic text exposition leaked exemplars")
	}
}

// TestDebugRoutesGated: the trace ring and pprof expose request
// internals, so under an authenticating provider they demand the write
// role — same gate as the mutating routes. Anonymous → 401, read-only
// token → 403, admin → 200.
func TestDebugRoutesGated(t *testing.T) {
	provider, err := auth.ParseStaticTokens(testTokens)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{})
	ts := httptest.NewServer(mustNew(t, Config{DefaultR: 8, Auth: provider, Tracer: tr}))
	defer ts.Close()

	paths := []string{"/debug/traces", "/debug/pprof/", "/debug/pprof/cmdline"}
	cases := []struct {
		name, token string
		want        int
	}{
		{"anonymous", "", http.StatusUnauthorized},
		{"read-only", "acme-reader", http.StatusForbidden},
		{"push-only", "acme-pusher", http.StatusForbidden},
		{"admin", "acme-admin", http.StatusOK},
	}
	for _, tc := range cases {
		for _, path := range paths {
			code, body := doAuth(t, "GET", ts.URL+path, tc.token, nil)
			if code != tc.want {
				t.Errorf("%s GET %s = %d, want %d (%s)", tc.name, path, code, tc.want, body)
			}
		}
	}
}

// TestDebugTracesEndpoint exercises the ring endpoint itself: records
// appear newest-first, ?limit caps them, and the ungated DebugHandler
// serves the same data for the localhost listener.
func TestDebugTracesEndpoint(t *testing.T) {
	tr := trace.New(trace.Config{})
	srv := mustNew(t, Config{DefaultR: 8, Tracer: tr})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if code, _ := do(t, "POST", ts.URL+"/v1/streams/s/points",
			map[string]any{"points": [][2]float64{{0, 0}, {1, 1}}}); code != http.StatusOK {
			t.Fatal("ingest failed")
		}
	}
	code, body := do(t, "GET", ts.URL+"/debug/traces?limit=2", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", code)
	}
	traces, ok := body["traces"].([]any)
	if !ok || len(traces) != 2 {
		t.Fatalf("limit=2 returned %v", body["traces"])
	}

	dbg := httptest.NewServer(srv.DebugHandler())
	defer dbg.Close()
	code, body = do(t, "GET", dbg.URL+"/debug/traces", nil)
	if code != http.StatusOK || body["traces"] == nil {
		t.Fatalf("DebugHandler /debug/traces: %d %v", code, body)
	}
}
