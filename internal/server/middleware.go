package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/internal/auth"
	"github.com/streamgeom/streamhull/internal/telemetry"
	"github.com/streamgeom/streamhull/internal/trace"
)

// The service layer: every API route passes through route(), which
// authenticates the bearer token, spends a tenant rate-limit token,
// checks the endpoint's required role, and records the request in the
// latency histogram and request counter — in that order, so a limited
// or unauthorized caller is turned away before any handler work runs.
// The observability routes (/metrics, /healthz, /readyz) bypass auth:
// scrapers and orchestrator probes do not carry tenant credentials.

// ctxKey keys the authenticated identity in the request context.
type ctxKey int

const identityKey ctxKey = iota

// identityFrom returns the identity route() attached. Handlers are only
// reachable through route(), so the value is always present; the zero
// identity (root tenant, no roles) is a safe fallback for tests that
// call handlers directly.
func identityFrom(req *http.Request) auth.Identity {
	if id, ok := req.Context().Value(identityKey).(auth.Identity); ok {
		return id
	}
	return auth.Identity{Tenant: "", Roles: auth.RoleAll}
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// anyRole marks routes whose exact requirement depends on the request
// body (PUT create: write, or push when the spec is a fan-in
// aggregate); the handler enforces it after parsing.
const anyRole auth.Role = 0

// route registers pattern with the full service-layer wrapper.
// endpoint is the metrics label (stable, low-cardinality); roleFor
// derives the required role from the request (nil = roleNeeded
// constant). When tracing is on, each request gets a root span named
// after the endpoint — continuing the caller's traceparent header when
// it sent one — and the latency histogram's bucket carries the trace
// id as its exemplar, so a dashboard spike links to a concrete trace.
func (s *Server) route(pattern, endpoint string, roleFor func(*http.Request) auth.Role, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sp := s.tracer.StartSpan(endpoint, req.Header.Get("traceparent"))
		if sp != nil {
			req = req.WithContext(trace.ContextWithSpan(req.Context(), sp))
		}
		s.serveAuthed(sw, req, roleFor, h)
		sp.SetAttr("status", strconv.Itoa(sw.status))
		sp.End()
		s.met.latency.With(endpoint).ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
		s.met.requests.With(endpoint, strconv.Itoa(sw.status)).Inc()
	})
}

// serveAuthed runs authentication, rate limiting and the role check,
// then the handler with the identity attached.
func (s *Server) serveAuthed(w http.ResponseWriter, req *http.Request, roleFor func(*http.Request) auth.Role, h http.HandlerFunc) {
	// With AsyncRecovery the handler is live before the stream map is:
	// until startup recovery completes, API routes answer 503 in the
	// uniform envelope (code "not_ready") carrying the same progress
	// numbers /readyz reports.
	if recovered, total, starting := s.health.Recovery(); starting {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error:    fmt.Sprintf("starting: %d of %d streams recovered", recovered, total),
			Code:     "not_ready",
			Recovery: &recoveryProgress{Recovered: recovered, Total: total},
		})
		return
	}
	sp := trace.FromContext(req.Context())
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	ident, err := s.authp.Authenticate(auth.BearerToken(req.Header.Get("Authorization")))
	if sp != nil {
		sp.ObserveStage("auth", time.Since(t0))
		t0 = time.Now()
	}
	if err != nil {
		w.Header().Set("WWW-Authenticate", `Bearer realm="streamhull"`)
		s.met.denied.With("unauthenticated").Inc()
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	sp.SetAttr("tenant", ident.Tenant)
	if err := s.ledger.Allow(ident.Tenant); err != nil {
		var rl *auth.RateLimitError
		if errors.As(err, &rl) {
			secs := int(math.Ceil(rl.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		s.met.denied.With("rate_limited").Inc()
		writeErr(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if sp != nil {
		sp.ObserveStage("ratelimit", time.Since(t0))
	}
	if roleFor != nil {
		if need := roleFor(req); need != anyRole && !ident.Roles.Has(need) {
			s.met.denied.With("forbidden").Inc()
			writeErr(w, http.StatusForbidden,
				"token for tenant %q lacks the %q role", ident.Tenant, need)
			return
		}
	}
	h(w, req.WithContext(context.WithValue(req.Context(), identityKey, ident)))
}

// requireRole is the in-handler role check for routes registered with
// anyRole; reports whether the request may proceed (writing the 403
// itself otherwise).
func (s *Server) requireRole(w http.ResponseWriter, ident auth.Identity, need auth.Role, ok bool) bool {
	if ok {
		return true
	}
	s.met.denied.With("forbidden").Inc()
	writeErr(w, http.StatusForbidden, "token for tenant %q lacks the %q role", ident.Tenant, need)
	return false
}

// needRead/needWrite/needPush are the fixed per-route role requirements.
func needRead(*http.Request) auth.Role  { return auth.RoleRead }
func needWrite(*http.Request) auth.Role { return auth.RoleWrite }

// needRestoreRole distinguishes the snapshot POST's two flavors: a
// ?source= push is the follower path (push role), a plain restore is a
// stream write.
func needRestoreRole(req *http.Request) auth.Role {
	if req.URL.Query().Get("source") != "" {
		return auth.RolePush
	}
	return auth.RoleWrite
}

// metrics is the server's instrument set. Mutation-path instruments are
// allocated once at startup; structural values (streams per tenant,
// WAL lag, source staleness, query-cache totals) are collectors
// evaluated at scrape time against the live stream map.
type metrics struct {
	requests     *telemetry.CounterVec   // endpoint, code
	latency      *telemetry.HistogramVec // endpoint
	ingestPoints *telemetry.CounterVec   // tenant
	denied       *telemetry.CounterVec   // reason
	pushAccepted *telemetry.Counter
	pushRejected *telemetry.Counter
	pushDeltas   *telemetry.Counter
	pushResyncs  *telemetry.Counter
	pullsTotal   *telemetry.Counter
	pullErrors   *telemetry.Counter
	pairHits     *telemetry.Counter
	pairMisses   *telemetry.Counter
	// Cold-tier instruments: eviction/rehydration counters plus the
	// rehydration latency distribution (with trace exemplars, so a slow
	// rehydration on a dashboard links to its request trace).
	evictions        *telemetry.Counter
	rehydrations     *telemetry.Counter
	rehydrateSeconds *telemetry.Histogram
}

// initMetrics registers every instrument and collector on reg and wires
// the observability routes.
func (s *Server) initMetrics(reg *telemetry.Registry) {
	s.met = metrics{
		requests: reg.NewCounterVec("streamhull_http_requests_total",
			"API requests by endpoint and response code", "endpoint", "code"),
		latency: reg.NewHistogramVec("streamhull_http_request_seconds",
			"API request latency by endpoint", nil, "endpoint"),
		ingestPoints: reg.NewCounterVec("streamhull_ingest_points_total",
			"points accepted into stream summaries, by tenant", "tenant"),
		denied: reg.NewCounterVec("streamhull_requests_denied_total",
			"requests turned away by the service layer, by reason", "reason"),
		pushAccepted: reg.NewCounter("streamhull_fanin_pushes_accepted_total",
			"fan-in source pushes accepted into aggregates"),
		pushRejected: reg.NewCounter("streamhull_fanin_pushes_rejected_total",
			"fan-in source pushes rejected (stale epoch, resync demanded, wrong kind, bad body)"),
		pushDeltas: reg.NewCounter("streamhull_fanin_push_deltas_total",
			"accepted fan-in pushes that arrived as epoch-ranged delta frames"),
		pushResyncs: reg.NewCounter("streamhull_fanin_push_resyncs_total",
			"delta pushes bounced with resync_required (the follower answers with a full snapshot)"),
		pullsTotal: reg.NewCounter("streamhull_fanin_pulls_total",
			"snapshots the aggregator fetched itself from lagging sources' advertised addresses"),
		pullErrors: reg.NewCounter("streamhull_fanin_pull_errors_total",
			"aggregator-initiated pulls that failed (unreachable source, bad snapshot, stale epoch)"),
		pairHits: reg.NewCounter("streamhull_paircache_hits_total",
			"pair queries answered from the (epochA, epochB) memo"),
		pairMisses: reg.NewCounter("streamhull_paircache_misses_total",
			"pair queries that had to run the geometry kernels"),
		evictions: reg.NewCounter("streamhull_store_evictions_total",
			"streams evicted from the warm set to their O(r) checkpoints"),
		rehydrations: reg.NewCounter("streamhull_store_rehydrations_total",
			"cold streams rebuilt from the store on a touch"),
		rehydrateSeconds: reg.NewHistogramVec("streamhull_store_rehydrate_seconds",
			"latency of rebuilding a cold stream from its checkpoint plus log tail", nil).With(),
	}

	// Warm/cold occupancy is derived at scrape time from the live
	// stream map: a stream is warm iff its read cache pointer is live
	// (one atomic load, no stream lock).
	reg.NewGaugeFunc("streamhull_store_resident_streams",
		"streams with a live in-memory summary",
		func() float64 {
			warm := 0
			s.mu.RLock()
			for _, st := range s.streams {
				if st.cache.Load() != nil {
					warm++
				}
			}
			s.mu.RUnlock()
			return float64(warm)
		})
	reg.NewGaugeFunc("streamhull_store_cold_streams",
		"streams parked in the cold tier (summary evicted to its checkpoint)",
		func() float64 {
			cold := 0
			s.mu.RLock()
			for _, st := range s.streams {
				if st.cache.Load() == nil {
					cold++
				}
			}
			s.mu.RUnlock()
			return float64(cold)
		})

	reg.NewGaugeCollector("streamhull_tenant_streams",
		"resident streams per tenant", []string{"tenant"},
		func(emit func([]string, float64)) {
			counts := make(map[string]int)
			s.mu.RLock()
			for key := range s.streams {
				tenant, _ := splitTenant(key)
				counts[tenant]++
			}
			s.mu.RUnlock()
			for tenant, n := range counts {
				emit([]string{tenant}, float64(n))
			}
		})

	reg.NewGaugeFunc("streamhull_wal_fsync_lag_seconds",
		"age of the oldest acknowledged append not yet fsynced, max over streams",
		func() float64 {
			var worst time.Duration
			s.mu.RLock()
			for _, st := range s.streams {
				st.mu.Lock()
				app := st.app
				st.mu.Unlock()
				if app == nil { // in-memory, or parked cold
					continue
				}
				if lag := app.SyncLag(); lag > worst {
					worst = lag
				}
			}
			s.mu.RUnlock()
			return worst.Seconds()
		})

	reg.NewGaugeCollector("streamhull_fanin_source_staleness_seconds",
		"time since each fan-in source's last accepted push", []string{"stream", "source"},
		func(emit func([]string, float64)) {
			now := time.Now()
			s.mu.RLock()
			type agg struct {
				id  string
				sum *streamhull.FanInHull
			}
			var aggs []agg
			for key, st := range s.streams {
				if fh, ok := st.summary().(*streamhull.FanInHull); ok {
					aggs = append(aggs, agg{id: key, sum: fh})
				}
			}
			s.mu.RUnlock()
			for _, a := range aggs {
				for _, src := range a.sum.Sources() {
					emit([]string{a.id, src.Name}, now.Sub(src.LastPush).Seconds())
				}
			}
		})

	// The query-cache totals are scrape-time sums over live streams'
	// QueryCache counters: monotone while streams live, shrinking only
	// when a stream is deleted (the hit ratio reads fine either way).
	sumStats := func(pick func(reads, rebuilds uint64) uint64) func() float64 {
		return func() float64 {
			var total uint64
			s.mu.RLock()
			for _, st := range s.streams {
				if qc := st.queries(); qc != nil {
					reads, rebuilds := qc.Stats()
					total += pick(reads, rebuilds)
				}
			}
			s.mu.RUnlock()
			return float64(total)
		}
	}
	reg.NewGaugeFunc("streamhull_querycache_reads_total",
		"epoch-cache revalidations across live streams",
		sumStats(func(reads, _ uint64) uint64 { return reads }))
	reg.NewGaugeFunc("streamhull_querycache_rebuilds_total",
		"epoch-cache view rebuilds across live streams (reads - rebuilds = hits)",
		sumStats(func(_, rebuilds uint64) uint64 { return rebuilds }))

}

// registerObservabilityRoutes exposes the metrics and health endpoints
// on the server's own mux (skipped with Config.DisableObservability).
func (s *Server) registerObservabilityRoutes() {
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.Handle("GET /healthz", s.health.LivenessHandler())
	s.mux.Handle("GET /readyz", s.health.ReadinessHandler())
}

// Metrics returns the server's registry, so embedding processes
// (hullserver's fan-in pusher, tests) can add their own instruments to
// the same /metrics page.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Health returns the server's health state; hullserver drops readiness
// during graceful shutdown so load balancers drain first.
func (s *Server) Health() *telemetry.Health { return &s.health }
