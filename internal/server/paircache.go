package server

import (
	"sync"

	streamhull "github.com/streamgeom/streamhull"
)

// pairCache memoizes pair-query answers on the (epochA, epochB) pair —
// the ROADMAP's "pair-query caching" item. Single-stream reads are
// epoch-cached in streamhull.QueryCache; pair answers (distance,
// separability, overlap, containment) combine two hulls, so they need a
// two-epoch key: an entry is served only while BOTH streams' read views
// still carry the epochs the answer was computed at, so any ingest or
// window expiry on either side invalidates it on the next request.
//
// Keys hold the two *QueryCache pointers, not stream ids: a durable
// stream that re-bases on a checkpoint swaps in a fresh QueryCache whose
// epochs restart at zero, and keying on the cache identity makes the old
// entries unreachable instead of colliding with the new epoch counter.
// Whoever retires a QueryCache (stream delete, checkpoint re-base)
// calls purge so the orphaned entries — which pin the cache and its
// summary — are dropped eagerly; the size bound is only the backstop.
//
// The cache is a small bounded map (pairCacheCap entries) with
// evict-anything overflow — pair traffic concentrates on few stream
// pairs, so anything smarter than "don't grow forever" is wasted.
type pairCache struct {
	mu sync.Mutex
	m  map[pairKey]pairEntry
}

// pairKey identifies one memoized answer: the two read caches (in query
// order — a/b asymmetry matters for distance witnesses and contains) and
// the query type.
type pairKey struct {
	qa, qb *streamhull.QueryCache
	typ    string
}

// pairEntry is one memoized answer with the view epochs it was computed
// at. The epochs are captured BEFORE the hulls are read, so an entry can
// only be stamped older than its contents — a racing mutation causes a
// spurious recompute on the next request, never a stale answer.
type pairEntry struct {
	ea, eb uint64
	resp   map[string]any
}

// pairCacheCap bounds the number of memoized pair answers.
const pairCacheCap = 1024

// get returns the memoized answer for k if it is still current at view
// epochs (ea, eb).
func (c *pairCache) get(k pairKey, ea, eb uint64) (map[string]any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok || e.ea != ea || e.eb != eb {
		return nil, false
	}
	return e.resp, true
}

// put memoizes an answer, evicting an arbitrary entry when full. resp
// must not be mutated after being handed over.
func (c *pairCache) put(k pairKey, ea, eb uint64, resp map[string]any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[pairKey]pairEntry)
	}
	if _, ok := c.m[k]; !ok && len(c.m) >= pairCacheCap {
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[k] = pairEntry{ea: ea, eb: eb, resp: resp}
}

// purge drops every entry keyed on a retired QueryCache, so a deleted
// or re-based stream's read state (and the summary it holds) becomes
// collectable immediately.
func (c *pairCache) purge(qc *streamhull.QueryCache) {
	if qc == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if k.qa == qc || k.qb == qc {
			delete(c.m, k)
		}
	}
}
