package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/workload"
)

// createWithSpec creates a stream from a spec JSON document.
func createWithSpec(t *testing.T, ts *httptest.Server, id, spec string) {
	t.Helper()
	req, err := http.NewRequest("PUT", ts.URL+"/v1/streams/"+id, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("creating %q with %s: %d", id, spec, resp.StatusCode)
	}
}

// TestPairQueryEmptyStreams is the regression test for the empty-hull
// bug: pair queries against a stream with no live points used to hand a
// zero-vertex hull to the geometry kernels and return a garbage [0,0]
// witness pair. They must now answer 409 with the offending ids.
func TestPairQueryEmptyStreams(t *testing.T) {
	ts := newTestServer(t)
	// "full" has points; "hollow" was created but never written.
	ingest(t, ts, "full", workload.Take(workload.Disk(1, geom.Pt(0, 0), 1), 100))
	if code, _ := do(t, "PUT", ts.URL+"/v1/streams/hollow?algo=adaptive&r=8", nil); code != http.StatusCreated {
		t.Fatal("create hollow")
	}
	for _, qt := range []string{"distance", "separable", "overlap", "contains"} {
		code, resp := do(t, "GET", ts.URL+"/v1/pairs/query?a=full&b=hollow&type="+qt, nil)
		if code != http.StatusConflict {
			t.Errorf("%s vs empty: code %d %v, want 409", qt, code, resp)
			continue
		}
		empties, ok := resp["empty"].([]any)
		if !ok || len(empties) != 1 || empties[0] != "hollow" {
			t.Errorf("%s: empty = %v, want [hollow]", qt, resp["empty"])
		}
		if _, hasPair := resp["pair"]; hasPair {
			t.Errorf("%s: response still fabricates a witness pair: %v", qt, resp)
		}
	}
	// Both sides empty: both ids reported.
	if code, _ := do(t, "PUT", ts.URL+"/v1/streams/hollow2?algo=adaptive&r=8", nil); code != http.StatusCreated {
		t.Fatal("create hollow2")
	}
	code, resp := do(t, "GET", ts.URL+"/v1/pairs/query?a=hollow&b=hollow2&type=distance", nil)
	if code != http.StatusConflict {
		t.Fatalf("both empty: %d", code)
	}
	if empties := resp["empty"].([]any); len(empties) != 2 {
		t.Errorf("both empty: empty = %v", empties)
	}
}

// TestPairQueryJustExpiredWindow: a time-windowed stream whose points
// all aged out is empty again — pair queries must 409, not fabricate
// answers from a stale hull.
func TestPairQueryJustExpiredWindow(t *testing.T) {
	srv := mustNew(t, Config{DefaultR: 16, SweepInterval: 10 * time.Millisecond})
	t.Cleanup(func() { _ = srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	createWithSpec(t, ts, "recent", `{"kind":"windowed","r":8,"window":"40ms"}`)
	ingest(t, ts, "steady", workload.Take(workload.Disk(2, geom.Pt(0, 0), 1), 50))
	ingest(t, ts, "recent", []geom.Point{geom.Pt(5, 5), geom.Pt(6, 5), geom.Pt(5, 6)})

	// Inside the window the pair answers normally.
	code, _ := do(t, "GET", ts.URL+"/v1/pairs/query?a=steady&b=recent&type=distance", nil)
	if code != http.StatusOK {
		t.Fatalf("pre-expiry distance: %d", code)
	}
	time.Sleep(80 * time.Millisecond) // let the window drain
	code, resp := do(t, "GET", ts.URL+"/v1/pairs/query?a=steady&b=recent&type=distance", nil)
	if code != http.StatusConflict {
		t.Fatalf("post-expiry distance: %d %v, want 409", code, resp)
	}
	if empties := resp["empty"].([]any); len(empties) != 1 || empties[0] != "recent" {
		t.Errorf("post-expiry empty = %v", resp["empty"])
	}
}

// TestPairQueryAcrossKinds drives every pair endpoint type across the
// adaptive × sharded × windowed kind matrix, plus single-point streams:
// the answers must be consistent regardless of which summary kind backs
// each side.
func TestPairQueryAcrossKinds(t *testing.T) {
	specs := map[string]string{
		"adaptive": `{"kind":"adaptive","r":16}`,
		"sharded":  `{"kind":"sharded","shards":3,"inner":{"kind":"adaptive","r":16}}`,
		"windowed": `{"kind":"windowed","r":16,"window":"100000"}`,
	}
	// Two well-separated unit disks: distance ≈ 8 (between x=1 and x=9),
	// separable, no overlap, no containment.
	left := workload.Take(workload.Disk(3, geom.Pt(0, 0), 1), 400)
	right := workload.Take(workload.Disk(4, geom.Pt(10, 0), 1), 400)

	for ak, aspec := range specs {
		for bk, bspec := range specs {
			t.Run(ak+"_vs_"+bk, func(t *testing.T) {
				ts := newTestServer(t)
				createWithSpec(t, ts, "a", aspec)
				createWithSpec(t, ts, "b", bspec)
				ingest(t, ts, "a", left)
				ingest(t, ts, "b", right)

				code, resp := do(t, "GET", ts.URL+"/v1/pairs/query?a=a&b=b&type=distance", nil)
				if code != http.StatusOK {
					t.Fatalf("distance: %d %v", code, resp)
				}
				d := resp["distance"].(float64)
				if d < 7 || d > 9 {
					t.Errorf("distance = %g, want ≈8", d)
				}
				pair := resp["pair"].([]any)
				if len(pair) != 2 {
					t.Fatalf("witness pair = %v", pair)
				}

				code, resp = do(t, "GET", ts.URL+"/v1/pairs/query?a=a&b=b&type=separable", nil)
				if code != http.StatusOK || resp["separable"] != true {
					t.Errorf("separable: %d %v", code, resp)
				}
				if _, ok := resp["line"]; !ok {
					t.Error("separable without a certificate line")
				}

				code, resp = do(t, "GET", ts.URL+"/v1/pairs/query?a=a&b=b&type=overlap", nil)
				if code != http.StatusOK || resp["overlap_area"].(float64) != 0 {
					t.Errorf("overlap: %d %v", code, resp)
				}

				code, resp = do(t, "GET", ts.URL+"/v1/pairs/query?a=a&b=b&type=contains", nil)
				if code != http.StatusOK || resp["a_contains_b"] != false || resp["b_contains_a"] != false {
					t.Errorf("contains: %d %v", code, resp)
				}
			})
		}
	}

	t.Run("single_point_sides", func(t *testing.T) {
		ts := newTestServer(t)
		createWithSpec(t, ts, "dot", specs["adaptive"])
		createWithSpec(t, ts, "blob", specs["sharded"])
		ingest(t, ts, "dot", []geom.Point{geom.Pt(20, 0)})
		ingest(t, ts, "blob", left)
		code, resp := do(t, "GET", ts.URL+"/v1/pairs/query?a=dot&b=blob&type=distance", nil)
		if code != http.StatusOK {
			t.Fatalf("single-point distance: %d %v", code, resp)
		}
		if d := resp["distance"].(float64); d < 18 || d > 20 {
			t.Errorf("single-point distance = %g, want ≈19", d)
		}
		// Two single-point streams.
		createWithSpec(t, ts, "dot2", specs["windowed"])
		ingest(t, ts, "dot2", []geom.Point{geom.Pt(20, 3)})
		code, resp = do(t, "GET", ts.URL+"/v1/pairs/query?a=dot&b=dot2&type=distance", nil)
		if code != http.StatusOK {
			t.Fatalf("point-vs-point distance: %d %v", code, resp)
		}
		if d := resp["distance"].(float64); d < 2.99 || d > 3.01 {
			t.Errorf("point-vs-point distance = %g, want 3", d)
		}
		code, resp = do(t, "GET", ts.URL+"/v1/pairs/query?a=blob&b=dot&type=contains", nil)
		if code != http.StatusOK || resp["a_contains_b"] != false {
			t.Errorf("contains with point side: %d %v", code, resp)
		}
	})
}

// TestPairQueryMemoization exercises the (epochA, epochB) cache
// directly: a repeat query is served from the cache, an ingest on either
// side invalidates it, and the invalidated entry is replaced (not
// duplicated).
func TestPairQueryMemoization(t *testing.T) {
	srv := mustNew(t, Config{DefaultR: 16})
	handler := func(method, url string, body []byte) (int, map[string]any) {
		req := httptest.NewRequest(method, url, nil)
		if body != nil {
			req = httptest.NewRequest(method, url, strings.NewReader(string(body)))
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		var out map[string]any
		_ = json.NewDecoder(rec.Body).Decode(&out)
		return rec.Code, out
	}
	ing := func(id string, pts ...[2]float64) {
		body, _ := json.Marshal(map[string]any{"points": pts})
		if code, resp := handler("POST", "/v1/streams/"+id+"/points", body); code != http.StatusOK {
			t.Fatalf("ingest: %d %v", code, resp)
		}
	}
	ing("a", [2]float64{0, 0}, [2]float64{1, 0}, [2]float64{0, 1})
	ing("b", [2]float64{5, 0}, [2]float64{6, 0}, [2]float64{5, 1})

	query := func() float64 {
		code, resp := handler("GET", "/v1/pairs/query?a=a&b=b&type=distance", nil)
		if code != http.StatusOK {
			t.Fatalf("distance: %d %v", code, resp)
		}
		return resp["distance"].(float64)
	}
	d1 := query()
	srv.pairs.mu.Lock()
	entries := len(srv.pairs.m)
	srv.pairs.mu.Unlock()
	if entries != 1 {
		t.Fatalf("cache entries after first query = %d, want 1", entries)
	}
	if d2 := query(); d2 != d1 {
		t.Errorf("repeat query changed: %g vs %g", d2, d1)
	}
	srv.pairs.mu.Lock()
	if len(srv.pairs.m) != 1 {
		t.Errorf("repeat query grew the cache to %d entries", len(srv.pairs.m))
	}
	var before pairEntry
	for _, e := range srv.pairs.m {
		before = e
	}
	srv.pairs.mu.Unlock()

	// Moving stream b invalidates; the entry is replaced with new stamps.
	ing("b", [2]float64{3, 0})
	d3 := query()
	if d3 >= d1 {
		t.Errorf("distance after moving b = %g, want < %g", d3, d1)
	}
	srv.pairs.mu.Lock()
	defer srv.pairs.mu.Unlock()
	if len(srv.pairs.m) != 1 {
		t.Errorf("cache entries after invalidation = %d, want 1 (replaced)", len(srv.pairs.m))
	}
	for _, e := range srv.pairs.m {
		if e.eb == before.eb {
			t.Error("entry not re-stamped after b moved")
		}
	}
}

// TestPairCachePurgeOnDeleteAndRebase: retiring a stream's QueryCache —
// by DELETE or by a checkpoint re-base — must drop its memoized pair
// entries so the dead cache (and the summary it pins) is collectable.
func TestPairCachePurgeOnDeleteAndRebase(t *testing.T) {
	dir := t.TempDir()
	srv := mustNew(t, Config{DefaultR: 16, DataDir: dir, CheckpointEvery: 8})
	t.Cleanup(func() { _ = srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	ingest(t, ts, "a", []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)})
	ingest(t, ts, "b", []geom.Point{geom.Pt(5, 0), geom.Pt(6, 0), geom.Pt(5, 1)})
	if code, _ := do(t, "GET", ts.URL+"/v1/pairs/query?a=a&b=b&type=distance", nil); code != http.StatusOK {
		t.Fatal("pair query")
	}
	srv.pairs.mu.Lock()
	if len(srv.pairs.m) != 1 {
		t.Fatalf("entries after query = %d", len(srv.pairs.m))
	}
	srv.pairs.mu.Unlock()

	// A checkpoint re-base swaps a's QueryCache and purges its entries.
	ingest(t, ts, "a", workload.Take(workload.Disk(1, geom.Pt(0, 0), 1), 16))
	srv.pairs.mu.Lock()
	n := len(srv.pairs.m)
	srv.pairs.mu.Unlock()
	if n != 0 {
		t.Errorf("entries after re-base = %d, want 0 (purged)", n)
	}

	// Repopulate, then DELETE b: its entries must go too.
	if code, _ := do(t, "GET", ts.URL+"/v1/pairs/query?a=a&b=b&type=overlap", nil); code != http.StatusOK {
		t.Fatal("pair query after re-base")
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/streams/b", nil); code != http.StatusOK {
		t.Fatal("delete b")
	}
	srv.pairs.mu.Lock()
	defer srv.pairs.mu.Unlock()
	if len(srv.pairs.m) != 0 {
		t.Errorf("entries after delete = %d, want 0 (purged)", len(srv.pairs.m))
	}
}

func TestPairCacheBound(t *testing.T) {
	var c pairCache
	caches := make([]*streamhull.QueryCache, pairCacheCap+10)
	for i := range caches {
		caches[i] = streamhull.NewQueryCache(streamhull.NewAdaptive(8))
	}
	for i := 0; i < pairCacheCap+10; i++ {
		c.put(pairKey{qa: caches[i], qb: caches[i], typ: "distance"}, 1, 1, map[string]any{})
	}
	if len(c.m) > pairCacheCap {
		t.Errorf("cache grew to %d entries, cap %d", len(c.m), pairCacheCap)
	}
}

// TestReadsDuringCheckpointRace hammers the read path (hull, query, pair
// query) while durable ingest constantly checkpoints and re-bases the
// live summaries — the stale-epoch audit from the pair-cache work. Run
// with -race in CI; correctness assertions: no 5xx, and the reported n
// never goes backwards on either stream.
func TestReadsDuringCheckpointRace(t *testing.T) {
	dir := t.TempDir()
	// Tiny checkpoint threshold: every few batches re-bases the summary
	// and swaps the QueryCache under the readers.
	srv := mustNew(t, Config{DefaultR: 16, DataDir: dir, CheckpointEvery: 64})
	t.Cleanup(func() { _ = srv.Close() })

	run := func(method, url string, body []byte) (int, map[string]any) {
		var req *http.Request
		if body != nil {
			req = httptest.NewRequest(method, url, strings.NewReader(string(body)))
		} else {
			req = httptest.NewRequest(method, url, nil)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		var out map[string]any
		_ = json.NewDecoder(rec.Body).Decode(&out)
		return rec.Code, out
	}

	pts := workload.Take(workload.Disk(9, geom.Pt(0, 0), 1), 4096)
	seed := func(id string) {
		body, _ := json.Marshal(map[string]any{"points": toPairs(pts[:32])})
		if code, resp := run("POST", "/v1/streams/"+id+"/points", body); code != http.StatusOK {
			t.Fatalf("seed %s: %d %v", id, code, resp)
		}
	}
	seed("s1")
	seed("s2")

	const batches = 40
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for _, id := range []string{"s1", "s2"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				lo := (i * 64) % (len(pts) - 64)
				body, _ := json.Marshal(map[string]any{"points": toPairs(pts[lo : lo+64])})
				if code, resp := run("POST", "/v1/streams/"+id+"/points", body); code != http.StatusOK {
					t.Errorf("ingest %s: %d %v", id, code, resp)
					return
				}
			}
		}(id)
	}
	go func() { wg.Wait(); close(writersDone) }()

	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			lastN := map[string]float64{}
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				for _, u := range []string{
					"/v1/streams/s1/hull",
					"/v1/streams/s2/query?type=diameter",
					"/v1/pairs/query?a=s1&b=s2&type=distance",
					"/v1/pairs/query?a=s1&b=s2&type=overlap",
					"/v1/streams/s1",
				} {
					code, resp := run("GET", u, nil)
					if code >= 500 {
						t.Errorf("reader %d: %s -> %d %v", r, u, code, resp)
						return
					}
					if n, ok := resp["n"].(float64); ok && strings.Contains(u, "hull") {
						if n < lastN[u] {
							t.Errorf("reader %d: n went backwards on %s: %g -> %g", r, u, lastN[u], n)
							return
						}
						lastN[u] = n
					}
				}
			}
		}(r)
	}
	rg.Wait()

	// Post-race sanity: both streams answer and report full counts.
	wantN := float64(32 + batches*64)
	for _, id := range []string{"s1", "s2"} {
		code, resp := run("GET", "/v1/streams/"+id, nil)
		if code != http.StatusOK || resp["n"].(float64) != wantN {
			t.Errorf("final %s: %d n=%v want %g", id, code, resp["n"], wantN)
		}
	}
	if code, _ := run("GET", "/v1/pairs/query?a=s1&b=s2&type=distance", nil); code != http.StatusOK {
		t.Errorf("final pair query: %d", code)
	}
}

// BenchmarkPairQuery shows the (epochA, epochB) memoization win: "warm"
// serves repeat pair queries from the cache through the full handler
// stack, "recompute" performs the geometric work the old handler re-did
// on every request (closest-pair walk over both cached hulls).
func BenchmarkPairQuery(b *testing.B) {
	srv, err := New(Config{DefaultR: 64})
	if err != nil {
		b.Fatal(err)
	}
	pts := workload.Take(workload.Disk(1, geom.Pt(0, 0), 1), 20000)
	ingestBench := func(id string, pts []geom.Point) {
		body, _ := json.Marshal(map[string]any{"points": toPairs(pts)})
		req := httptest.NewRequest("POST", "/v1/streams/"+id+"/points", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("ingest: %d %s", rec.Code, rec.Body)
		}
	}
	ingestBench("a", pts[:10000])
	shifted := make([]geom.Point, 10000)
	for i, p := range pts[10000:] {
		shifted[i] = geom.Pt(p.X+5, p.Y)
	}
	ingestBench("b", shifted)

	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", "/v1/pairs/query?a=a&b=b&type=distance", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("query: %d", rec.Code)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		sa, _ := srv.get("", "a", false)
		sb, _ := srv.get("", "b", false)
		ha, hb := sa.queries().Hull(), sb.queries().Hull()
		for i := 0; i < b.N; i++ {
			if resp, ok := pairAnswer("distance", ha, hb); !ok || resp == nil {
				b.Fatal("recompute failed")
			}
		}
	})
}
