package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/fanin"
	"github.com/streamgeom/streamhull/internal/faults"
	"github.com/streamgeom/streamhull/internal/workload"
)

// soakFollower is one simulated follower node: a live adaptive summary
// fed rounds of points, pushed through a fault-injecting transport.
type soakFollower struct {
	name   string
	sum    *streamhull.AdaptiveHull
	faults *faults.Transport
	pusher *fanin.Pusher
	feed   func(n int) []geom.Point
}

func (f *soakFollower) collect(stream string, r int) func() []fanin.StreamSnapshot {
	return func() []fanin.StreamSnapshot {
		snap := f.sum.Snapshot()
		data, err := snap.Encode()
		if err != nil {
			panic(err)
		}
		return []fanin.StreamSnapshot{{
			Stream: stream, R: r, Data: data, N: snap.N, Points: snap.Points,
		}}
	}
}

// TestFanInFaultSoakConvergence is the proof-layer soak: several
// followers push through a transport that drops, delays, duplicates and
// replays their frames on a seeded schedule — delta frames, full
// snapshots and create calls alike — with followers occasionally
// partitioned away entirely. Once the faults heal and every follower
// lands one clean push, the aggregate must be BIT-EXACT with a one-shot
// MergeSnapshots of the followers' final snapshots: at-least-once,
// out-of-order delivery may delay convergence but never corrupt it.
func TestFanInFaultSoakConvergence(t *testing.T) {
	const (
		r         = 16
		stream    = "soak"
		followers = 3
		rounds    = 8
		seed      = 42
	)
	srv := mustNew(t, Config{DefaultR: r})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	rng := rand.New(rand.NewSource(seed))
	fols := make([]*soakFollower, followers)
	for i := range fols {
		f := &soakFollower{
			name: fmt.Sprintf("f%d", i),
			sum:  streamhull.NewAdaptive(r),
		}
		f.faults = faults.New(faults.Config{
			Seed:      seed + int64(i),
			DropProb:  0.30,
			DelayProb: 0.20,
			MaxDelay:  3 * time.Millisecond,
			DupProb:   0.30,
			// Replays resend stale frames AFTER newer ones landed — the
			// duplicated+reordered case the epoch rules must absorb.
			ReplayProb: 0.30,
		})
		gen := workload.Disk(seed+int64(i)*7, geom.Pt(float64(i), -float64(i)), 2)
		f.feed = func(n int) []geom.Point { return workload.Take(gen, n) }
		epoch := uint64(0)
		p, err := fanin.NewPusher(fanin.PusherConfig{
			Target: ts.URL, Source: f.name, Deltas: true,
			Collect: f.collect(stream, r),
			Client:  &http.Client{Transport: f.faults, Timeout: 5 * time.Second},
			Epoch:   func() uint64 { epoch++; return epoch },
			// Keep in-tick retries short: the soak wants frames LOST, not
			// patiently recovered, so convergence rests on the epoch rules.
			MaxRetries: 1, Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.pusher = p
		fols[i] = f
	}

	// Chaos phase: ingest and push round after round; pushes are allowed
	// to fail, duplicate and arrive stale. Random followers drop off the
	// network for a round and return.
	for round := 0; round < rounds; round++ {
		for _, f := range fols {
			if _, err := f.sum.InsertBatch(f.feed(150)); err != nil {
				t.Fatal(err)
			}
			f.faults.SetPartitioned(rng.Float64() < 0.2)
			_ = f.pusher.PushOnce(context.Background()) // failures are the point
		}
	}

	// Heal: faults off, partitions lifted, one clean push each.
	var injected uint64
	for _, f := range fols {
		st := f.faults.Stats()
		injected += st.Drops + st.Dups + st.Replays + st.Partitioned
		f.faults.SetPartitioned(false)
		f.faults.SetEnabled(false)
		if err := f.pusher.PushOnce(context.Background()); err != nil {
			t.Fatalf("%s: healed push failed: %v", f.name, err)
		}
	}
	if injected == 0 {
		t.Fatal("fault schedule injected nothing — the soak soaked nothing")
	}
	t.Logf("faults injected across followers: %d", injected)

	// Oracle: one-shot merge of the followers' FINAL snapshots, in
	// source-name order (f0 < f1 < f2 — already the slice order).
	finals := make([]streamhull.Snapshot, followers)
	wantN := 0
	for i, f := range fols {
		finals[i] = f.sum.Snapshot()
		wantN += finals[i].N
	}
	oneShot, err := streamhull.MergeSnapshots(r, finals...)
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot.Snapshot()

	got := getSnapshot(t, ts, stream)
	if got.N != wantN {
		t.Errorf("aggregate N = %d, want %d (sum of follower counts)", got.N, wantN)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("aggregate sample has %d points, one-shot merge %d", len(got.Points), len(want.Points))
	}
	for i := range got.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("sample[%d] = %v, one-shot merge %v — not bit-exact", i, got.Points[i], want.Points[i])
		}
	}

	// The merged hulls agree vertex-for-vertex too.
	wantHull := oneShot.Hull().Vertices()
	gotHull, _ := hullVertices(t, ts, stream)
	if len(gotHull) != len(wantHull) {
		t.Fatalf("aggregate hull has %d vertices, one-shot merge %d", len(gotHull), len(wantHull))
	}
	for i := range gotHull {
		xy := gotHull[i].([]any)
		if xy[0].(float64) != wantHull[i].X || xy[1].(float64) != wantHull[i].Y {
			t.Fatalf("hull vertex %d: %v vs %v", i, xy, wantHull[i])
		}
	}
}

// getSnapshot GETs and decodes one stream's snapshot.
func getSnapshot(t *testing.T, ts *httptest.Server, stream string) streamhull.Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/streams/" + stream + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: %d: %s", resp.StatusCode, data)
	}
	snap, err := streamhull.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestFanInPullThroughFaultyTransport drives the aggregator-initiated
// pull path through a partitioned-then-healed transport: the pull fails
// and backs off while the partition holds, then lands once it lifts,
// refreshing the quiet source's contribution.
func TestFanInPullThroughFaultyTransport(t *testing.T) {
	const r = 16
	// The follower side: a real server owning the stream to be pulled.
	folSrv := mustNew(t, Config{DefaultR: r})
	fol := httptest.NewServer(folSrv)
	t.Cleanup(fol.Close)
	pts := workload.Take(workload.Disk(7, geom.Pt(0, 0), 1), 400)
	ingest(t, fol, "clicks", pts)

	ft := faults.New(faults.Config{Seed: 7})
	ft.SetEnabled(false)    // pass-through...
	ft.SetPartitioned(true) // ...but partitioned away

	aggSrv := mustNew(t, Config{
		DefaultR:     r,
		PullAfter:    50 * time.Millisecond,
		PullInterval: 25 * time.Millisecond,
		PullClient:   &http.Client{Transport: ft, Timeout: 2 * time.Second},
	})
	t.Cleanup(func() { _ = aggSrv.Close() })
	agg := httptest.NewServer(aggSrv)
	t.Cleanup(agg.Close)

	// One manual push that advertises the follower's address, then
	// silence: the source's lag crosses PullAfter and the puller takes
	// over.
	createFanIn(t, agg, "clicks", r)
	seedSnap := donor(t, r, pts[:10])
	data, err := seedSnap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	u := fmt.Sprintf("%s/v1/streams/clicks/snapshot?source=quiet&epoch=1&addr=%s", agg.URL, fol.URL)
	resp, err := http.Post(u, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed push: %d", resp.StatusCode)
	}

	// Partitioned: pulls must be failing, not landing.
	deadline := time.Now().Add(3 * time.Second)
	for ft.Stats().Partitioned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("puller never attempted a pull through the partition")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := sourceN(t, agg, "clicks", "quiet"); n != 10 {
		t.Fatalf("partitioned pull changed the contribution: n=%d", n)
	}

	// Heal the partition: the next (backed-off) pull fetches the
	// follower's full 400-point stream.
	ft.SetPartitioned(false)
	for sourceN(t, agg, "clicks", "quiet") != 400 {
		if time.Now().After(deadline.Add(5 * time.Second)) {
			t.Fatalf("pull never refreshed the source: n=%d", sourceN(t, agg, "clicks", "quiet"))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The detail response records the pull.
	code, detail := do(t, "GET", agg.URL+"/v1/streams/clicks", nil)
	if code != http.StatusOK {
		t.Fatalf("detail: %d", code)
	}
	src := detail["sources"].([]any)[0].(map[string]any)
	if src["addr"] != fol.URL {
		t.Errorf("source addr = %v, want %s", src["addr"], fol.URL)
	}
	if p, ok := src["pulls"].(float64); !ok || p < 1 {
		t.Errorf("source pulls = %v, want >= 1", src["pulls"])
	}
}

// sourceN reads one source's contributed n from the stream detail.
func sourceN(t *testing.T, ts *httptest.Server, stream, source string) int {
	t.Helper()
	code, detail := do(t, "GET", ts.URL+"/v1/streams/"+stream, nil)
	if code != http.StatusOK {
		t.Fatalf("detail: %d", code)
	}
	srcs, _ := detail["sources"].([]any)
	for _, s := range srcs {
		m := s.(map[string]any)
		if m["source"] == source {
			return int(m["n"].(float64))
		}
	}
	return -1
}
