package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/fanin"
	"github.com/streamgeom/streamhull/internal/workload"
)

// pushDeltaFrame POSTs one encoded delta frame and returns status+body.
func pushDeltaFrame(t *testing.T, ts *httptest.Server, stream, source string, frame []byte) (int, map[string]any) {
	t.Helper()
	u := fmt.Sprintf("%s/v1/streams/%s/snapshot?source=%s", ts.URL, stream, source)
	resp, err := http.Post(u, fanin.DeltaContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding delta push response: %v", err)
	}
	return resp.StatusCode, out
}

// TestDeltaPushEndpoint walks the whole delta negotiation over real
// HTTP: full push → delta → duplicate replay (idempotent no-op) →
// reordered stale frame → gapped base (resync demand carrying the
// acked epoch) → first-contact delta (resync) → garbage (400).
func TestDeltaPushEndpoint(t *testing.T) {
	const r = 16
	ts := newTestServer(t)
	createFanIn(t, ts, "agg", r)

	pts := workload.Take(workload.Disk(21, geom.Pt(0, 0), 2), 3000)
	snapA := donor(t, r, pts[:1000])
	snapB := donor(t, r, pts[:2000])

	// Base: a full push at epoch 10.
	code, resp := pushSnap(t, ts, "agg", "n1", 10, snapA)
	if code != http.StatusOK {
		t.Fatalf("full push: %d %v", code, resp)
	}
	if resp["acked_epoch"].(float64) != 10 {
		t.Fatalf("full push ack = %v, want 10", resp["acked_epoch"])
	}

	// Delta 10 → 20: accepted, aggregate now reflects snapB.
	frame := fanin.EncodeDelta(fanin.ComputeDelta(10, 20, snapB.N, snapA.Points, snapB.Points))
	code, resp = pushDeltaFrame(t, ts, "agg", "n1", frame)
	if code != http.StatusOK {
		t.Fatalf("delta push: %d %v", code, resp)
	}
	if resp["acked_epoch"].(float64) != 20 || resp["n"].(float64) != float64(snapB.N) {
		t.Fatalf("delta push response = %v, want ack 20 n %d", resp, snapB.N)
	}

	// Duplicate replay of the SAME frame (an at-least-once transport
	// resending): 200, and the aggregate must not double-apply — n and
	// the sample are exactly one application.
	code, resp = pushDeltaFrame(t, ts, "agg", "n1", frame)
	if code != http.StatusOK {
		t.Fatalf("duplicate delta replay: %d %v", code, resp)
	}
	if resp["acked_epoch"].(float64) != 20 || resp["n"].(float64) != float64(snapB.N) {
		t.Fatalf("duplicate replay mutated state: %v", resp)
	}
	got := getSnapshot(t, ts, "agg")
	oneShot, err := streamhull.MergeSnapshots(r, snapB)
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot.Snapshot().Points
	if len(got.Points) != len(want) {
		t.Fatalf("after replay: %d sample points, want %d", len(got.Points), len(want))
	}
	for i := range want {
		if got.Points[i] != want[i] {
			t.Fatalf("after replay: sample[%d] = %v, want %v", i, got.Points[i], want[i])
		}
	}

	// A reordered OLDER frame (epoch 15 < stored 20): stale, dropped.
	stale := fanin.EncodeDelta(fanin.ComputeDelta(10, 15, snapA.N, snapA.Points, snapA.Points))
	code, resp = pushDeltaFrame(t, ts, "agg", "n1", stale)
	if code != http.StatusConflict || resp["code"] != "stale_epoch" {
		t.Fatalf("reordered older frame: %d %v, want 409 stale_epoch", code, resp)
	}

	// A frame built on an epoch the server never stored (a lost push in
	// between): resync demand, carrying the epoch the server DOES hold
	// so the follower can re-anchor.
	gapped := fanin.EncodeDelta(fanin.ComputeDelta(13, 30, snapB.N, snapB.Points, snapB.Points))
	code, resp = pushDeltaFrame(t, ts, "agg", "n1", gapped)
	if code != http.StatusConflict || resp["code"] != "resync_required" {
		t.Fatalf("gapped base: %d %v, want 409 resync_required", code, resp)
	}
	if resp["acked_epoch"].(float64) != 20 {
		t.Fatalf("resync demand acked_epoch = %v, want 20", resp["acked_epoch"])
	}

	// First contact must be a full push: a delta for an unknown source
	// is a resync demand too (with no acked epoch to offer).
	code, resp = pushDeltaFrame(t, ts, "agg", "ghost", frame)
	if code != http.StatusConflict || resp["code"] != "resync_required" {
		t.Fatalf("first-contact delta: %d %v, want 409 resync_required", code, resp)
	}
	if _, has := resp["acked_epoch"]; has {
		t.Fatalf("first-contact resync offered an acked epoch: %v", resp)
	}

	// Garbage under the delta content type: 400 from the decoder.
	code, resp = pushDeltaFrame(t, ts, "agg", "n1", []byte("not a frame"))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage frame: %d %v, want 400", code, resp)
	}

	// The stored contribution survived all of the above untouched.
	if n := sourceN(t, ts, "agg", "n1"); n != snapB.N {
		t.Fatalf("contribution n = %d after rejected frames, want %d", n, snapB.N)
	}
}

// TestPusherDeltaResyncAfterAggregatorRestart: the follower holds an
// acked base, the aggregator restarts and forgets it; the pusher's next
// delta bounces with resync_required and the SAME attempt lands a full
// snapshot — one round trip, no lost interval.
func TestPusherDeltaResyncAfterAggregatorRestart(t *testing.T) {
	const r = 16
	folSrv := mustNew(t, Config{DefaultR: r})
	fol := httptest.NewServer(folSrv)
	t.Cleanup(fol.Close)
	ingest(t, fol, "clicks", workload.Take(workload.Disk(31, geom.Pt(0, 0), 1), 500))

	aggSrv := mustNew(t, Config{DefaultR: r})
	agg := httptest.NewServer(aggSrv)
	t.Cleanup(agg.Close)

	epoch := uint64(0)
	p, err := fanin.NewPusher(fanin.PusherConfig{
		Target: agg.URL, Source: "f1", Deltas: true,
		Collect: folSrv.StreamSnapshots,
		Epoch:   func() uint64 { epoch++; return epoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	if err := p.PushOnce(ctx); err != nil { // full (first contact)
		t.Fatal(err)
	}
	if err := p.PushOnce(ctx); err != nil { // delta (acked base)
		t.Fatal(err)
	}
	if st := p.Stats(); st.DeltaPushes != 1 || st.FullPushes != 1 {
		t.Fatalf("stats before restart = %+v, want 1 delta / 1 full", st)
	}

	// Restart the aggregator in place: same URL, empty state.
	agg.Config.Handler = http.HandlerFunc(mustNew(t, Config{DefaultR: r}).ServeHTTP)
	for i := 0; i < 2; i++ { // first attempt may burn on the 404-create cycle
		if err = p.PushOnce(ctx); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("push after restart: %v", err)
	}
	st := p.Stats()
	if st.Resyncs == 0 && st.FullPushes < 2 {
		t.Fatalf("restart did not force a full resync: %+v", st)
	}
	code, detail := do(t, "GET", agg.URL+"/v1/streams/clicks", nil)
	if code != http.StatusOK || detail["n"].(float64) != 500 {
		t.Fatalf("restarted aggregator state: %d %v, want n=500", code, detail["n"])
	}
}
