package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/workload"
)

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(mustNew(t, Config{DefaultR: 16}))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func ingest(t *testing.T, ts *httptest.Server, id string, pts []geom.Point) {
	t.Helper()
	body := map[string]any{"points": toPairs(pts)}
	code, resp := do(t, "POST", ts.URL+"/v1/streams/"+id+"/points", body)
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %v", code, resp)
	}
}

func toPairs(pts []geom.Point) [][2]float64 {
	out := make([][2]float64, len(pts))
	for i, p := range pts {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

func TestCreateListDelete(t *testing.T) {
	ts := newTestServer(t)
	code, resp := do(t, "PUT", ts.URL+"/v1/streams/s1?algo=adaptive&r=8", nil)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, resp)
	}
	// Duplicate create conflicts.
	if code, _ := do(t, "PUT", ts.URL+"/v1/streams/s1", nil); code != http.StatusConflict {
		t.Errorf("duplicate create: %d", code)
	}
	// Bad algo.
	if code, _ := do(t, "PUT", ts.URL+"/v1/streams/s2?algo=wizard", nil); code != http.StatusBadRequest {
		t.Errorf("bad algo: %d", code)
	}
	code, resp = do(t, "GET", ts.URL+"/v1/streams", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if n := len(resp["streams"].([]any)); n != 1 {
		t.Errorf("listed %d streams", n)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/streams/s1", nil); code != http.StatusOK {
		t.Errorf("delete failed")
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/streams/s1", nil); code != http.StatusNotFound {
		t.Errorf("double delete: %d", code)
	}
}

func TestIngestAndQueries(t *testing.T) {
	ts := newTestServer(t)
	pts := workload.Take(workload.Disk(1, geom.Pt(0, 0), 2), 5000)
	ingest(t, ts, "sensors", pts) // auto-created

	code, hull := do(t, "GET", ts.URL+"/v1/streams/sensors/hull", nil)
	if code != http.StatusOK {
		t.Fatalf("hull: %d %v", code, hull)
	}
	if hull["n"].(float64) != 5000 {
		t.Errorf("n = %v", hull["n"])
	}
	if area := hull["area"].(float64); area < 9 || area > 13 {
		t.Errorf("disk hull area = %v, want ≈ 4π", area)
	}

	code, diam := do(t, "GET", ts.URL+"/v1/streams/sensors/query?type=diameter", nil)
	if code != http.StatusOK {
		t.Fatalf("diameter: %d", code)
	}
	if d := diam["diameter"].(float64); math.Abs(d-4) > 0.2 {
		t.Errorf("diameter = %v, want ≈ 4", d)
	}

	code, ext := do(t, "GET", ts.URL+"/v1/streams/sensors/query?type=extent&theta=0", nil)
	if code != http.StatusOK || ext["extent"].(float64) < 3.5 {
		t.Errorf("extent: %d %v", code, ext)
	}

	code, circ := do(t, "GET", ts.URL+"/v1/streams/sensors/query?type=circle", nil)
	if code != http.StatusOK || math.Abs(circ["radius"].(float64)-2) > 0.2 {
		t.Errorf("circle: %d %v", code, circ)
	}

	// Unknown query type and missing theta.
	if code, _ := do(t, "GET", ts.URL+"/v1/streams/sensors/query?type=nope", nil); code != http.StatusBadRequest {
		t.Errorf("unknown query type: %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/streams/sensors/query?type=extent", nil); code != http.StatusBadRequest {
		t.Errorf("missing theta: %d", code)
	}
}

func TestIngestValidation(t *testing.T) {
	ts := newTestServer(t)
	// Empty body.
	code, _ := do(t, "POST", ts.URL+"/v1/streams/x/points", map[string]any{"points": [][2]float64{}})
	if code != http.StatusBadRequest {
		t.Errorf("empty batch: %d", code)
	}
	// NaN point (JSON can't carry NaN; use a huge string instead → decode error).
	req, _ := http.NewRequest("POST", ts.URL+"/v1/streams/x/points",
		bytes.NewReader([]byte(`{"points":[[null,0]]}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Log("null decoded as 0; accepted (documented behavior)")
	}
	// Garbage body.
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/streams/x/points", bytes.NewReader([]byte(`{`)))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: %d", resp2.StatusCode)
	}
}

func TestPairQueries(t *testing.T) {
	ts := newTestServer(t)
	left := workload.Take(workload.Disk(2, geom.Pt(-5, 0), 1), 3000)
	right := workload.Take(workload.Disk(3, geom.Pt(5, 0), 1), 3000)
	ingest(t, ts, "left", left)
	ingest(t, ts, "right", right)

	code, dist := do(t, "GET", ts.URL+"/v1/pairs/query?a=left&b=right&type=distance", nil)
	if code != http.StatusOK {
		t.Fatalf("distance: %d %v", code, dist)
	}
	if d := dist["distance"].(float64); math.Abs(d-8) > 0.3 {
		t.Errorf("pair distance = %v, want ≈ 8", d)
	}

	code, sep := do(t, "GET", ts.URL+"/v1/pairs/query?a=left&b=right&type=separable", nil)
	if code != http.StatusOK || sep["separable"] != true {
		t.Errorf("separable: %d %v", code, sep)
	}
	if _, ok := sep["line"]; !ok {
		t.Error("no certificate line")
	}

	code, ov := do(t, "GET", ts.URL+"/v1/pairs/query?a=left&b=right&type=overlap", nil)
	if code != http.StatusOK || ov["overlap_area"].(float64) != 0 {
		t.Errorf("overlap: %d %v", code, ov)
	}

	code, ct := do(t, "GET", ts.URL+"/v1/pairs/query?a=left&b=right&type=contains", nil)
	if code != http.StatusOK || ct["a_contains_b"] != false {
		t.Errorf("contains: %d %v", code, ct)
	}

	// Missing stream.
	if code, _ := do(t, "GET", ts.URL+"/v1/pairs/query?a=left&b=ghost&type=distance", nil); code != http.StatusNotFound {
		t.Errorf("ghost pair: %d", code)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ingest(t, ts, "s", workload.Take(workload.Gaussian(4, geom.Point{}, 1), 2000))
	code, snap := do(t, "GET", ts.URL+"/v1/streams/s/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %v", code, snap)
	}
	if snap["kind"] != "adaptive" {
		t.Errorf("kind = %v", snap["kind"])
	}
	angles := snap["angles"].([]any)
	points := snap["points"].([]any)
	if len(angles) != len(points) || len(angles) == 0 {
		t.Errorf("snapshot sizes: %d angles, %d points", len(angles), len(points))
	}
	// Exact streams do not snapshot.
	if code, _ := do(t, "PUT", ts.URL+"/v1/streams/ex?algo=exact", nil); code != http.StatusCreated {
		t.Fatal("create exact")
	}
	ingest(t, ts, "ex", []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	if code, _ := do(t, "GET", ts.URL+"/v1/streams/ex/snapshot", nil); code != http.StatusBadRequest {
		t.Errorf("exact snapshot: %d", code)
	}
}

func TestStreamLimit(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Config{DefaultR: 8, MaxStreams: 2}))
	defer ts.Close()
	for i := 0; i < 2; i++ {
		if code, _ := do(t, "PUT", fmt.Sprintf("%s/v1/streams/s%d", ts.URL, i), nil); code != http.StatusCreated {
			t.Fatalf("create %d failed", i)
		}
	}
	if code, _ := do(t, "PUT", ts.URL+"/v1/streams/s2", nil); code != http.StatusInsufficientStorage {
		t.Errorf("over-limit create: %d", code)
	}
}

func TestBatchLimit(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Config{DefaultR: 8, MaxBatch: 10}))
	defer ts.Close()
	pts := workload.Take(workload.Disk(5, geom.Point{}, 1), 11)
	code, _ := do(t, "POST", ts.URL+"/v1/streams/s/points", map[string]any{"points": toPairs(pts)})
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d", code)
	}
}

func TestWindowedStream(t *testing.T) {
	srv := mustNew(t, Config{DefaultR: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, resp := do(t, "PUT", ts.URL+"/v1/streams/w1?window=500&r=8", nil)
	if code != http.StatusCreated {
		t.Fatalf("create windowed: %d %v", code, resp)
	}
	if resp["window"] != "500" {
		t.Fatalf("create response lacks window: %v", resp)
	}

	// An early faraway phase followed by a long local phase: the windowed
	// hull must forget the early phase.
	ingest(t, ts, "w1", workload.Take(workload.Disk(1, geom.Pt(1000, 0), 1), 1000))
	ingest(t, ts, "w1", workload.Take(workload.Disk(2, geom.Pt(0, 0), 1), 2000))

	code, hull := do(t, "GET", ts.URL+"/v1/streams/w1/hull", nil)
	if code != http.StatusOK {
		t.Fatalf("hull: %d %v", code, hull)
	}
	for _, v := range hull["vertices"].([]any) {
		x := v.([]any)[0].(float64)
		if x > 100 {
			t.Fatalf("windowed hull kept expired vertex at x=%g", x)
		}
	}

	// List reports the window spec and a live count near the window.
	_, listed := do(t, "GET", ts.URL+"/v1/streams", nil)
	info := listed["streams"].([]any)[0].(map[string]any)
	if info["window"] != "500" {
		t.Fatalf("list lacks window spec: %v", info)
	}
	wc := int(info["window_count"].(float64))
	if wc < 500 || wc > 2000 {
		t.Fatalf("window_count = %d, want near 500", wc)
	}
	if n := int(info["n"].(float64)); n != 3000 {
		t.Fatalf("n = %d, want lifetime 3000", n)
	}

	// Windowed streams still serve snapshots and single-stream queries.
	if code, _ := do(t, "GET", ts.URL+"/v1/streams/w1/snapshot", nil); code != http.StatusOK {
		t.Errorf("windowed snapshot: %d", code)
	}
	code, q := do(t, "GET", ts.URL+"/v1/streams/w1/query?type=diameter", nil)
	if code != http.StatusOK {
		t.Fatalf("windowed diameter: %d %v", code, q)
	}
	if d := q["diameter"].(float64); d > 10 {
		t.Errorf("windowed diameter %g still spans the expired phase", d)
	}
}

func TestWindowedCreateValidation(t *testing.T) {
	ts := newTestServer(t)
	for path, want := range map[string]int{
		"/v1/streams/bad1?window=abc":              http.StatusBadRequest,
		"/v1/streams/bad2?window=0":                http.StatusBadRequest,
		"/v1/streams/bad3?window=-5s":              http.StatusBadRequest,
		"/v1/streams/bad4?window=100&algo=uniform": http.StatusBadRequest,
		"/v1/streams/bad5?window=100&algo=exact":   http.StatusBadRequest,
		"/v1/streams/ok1?window=100":               http.StatusCreated,
		"/v1/streams/ok2?window=30s&algo=adaptive": http.StatusCreated,
	} {
		if code, resp := do(t, "PUT", ts.URL+path, nil); code != want {
			t.Errorf("PUT %s: got %d (%v), want %d", path, code, resp, want)
		}
	}
}

func TestTimeWindowSweep(t *testing.T) {
	srv := mustNew(t, Config{DefaultR: 16, SweepInterval: 10 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, resp := do(t, "PUT", ts.URL+"/v1/streams/tw?window=50ms&r=8", nil); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, resp)
	}
	ingest(t, ts, "tw", workload.Take(workload.Disk(1, geom.Point{}, 1), 200))

	// With no further inserts, the background sweeper must age the whole
	// window out.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, listed := do(t, "GET", ts.URL+"/v1/streams", nil)
		info := listed["streams"].([]any)[0].(map[string]any)
		if _, has := info["window_count"]; !has { // omitempty: count reached 0
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never expired the idle window: %v", info)
		}
		time.Sleep(20 * time.Millisecond)
	}
	code, hull := do(t, "GET", ts.URL+"/v1/streams/tw/hull", nil)
	if code != http.StatusOK {
		t.Fatalf("hull: %d", code)
	}
	if vs, ok := hull["vertices"].([]any); ok && len(vs) != 0 {
		t.Fatalf("hull still has %d vertices after expiry", len(vs))
	}
}

func TestPairQueryValidation(t *testing.T) {
	ts := newTestServer(t)
	ingest(t, ts, "pa", workload.Take(workload.Disk(1, geom.Point{}, 1), 10))
	if code, _ := do(t, "GET", ts.URL+"/v1/pairs/query?a=pa&type=distance", nil); code != http.StatusBadRequest {
		t.Errorf("missing b: got %d, want 400", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/pairs/query?a=pa&b=ghost&type=distance", nil); code != http.StatusNotFound {
		t.Errorf("unknown b: got %d, want 404", code)
	}
}

func TestBodyLimit(t *testing.T) {
	srv := mustNew(t, Config{DefaultR: 16, MaxBodyBytes: 1024})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	big := workload.Take(workload.Disk(1, geom.Point{}, 1), 1000)
	body := map[string]any{"points": toPairs(big)}
	code, resp := do(t, "POST", ts.URL+"/v1/streams/big/points", body)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d (%v), want 413", code, resp)
	}
	if _, ok := resp["error"]; !ok {
		t.Fatalf("oversized body error is not structured JSON: %v", resp)
	}
}
