package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/fanin"
	"github.com/streamgeom/streamhull/internal/workload"
)

// donor builds a follower-side adaptive summary over pts and returns its
// snapshot — what a follower node would push.
func donor(t *testing.T, r int, pts []geom.Point) streamhull.Snapshot {
	t.Helper()
	d := streamhull.NewAdaptive(r)
	if _, err := d.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	return d.Snapshot()
}

// pushSnap POSTs one source-tagged snapshot and returns status + body.
func pushSnap(t *testing.T, ts *httptest.Server, stream, source string, epoch uint64, snap streamhull.Snapshot) (int, map[string]any) {
	t.Helper()
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/streams/%s/snapshot?source=%s&epoch=%d", ts.URL, stream, source, epoch)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding push response: %v", err)
	}
	return resp.StatusCode, out
}

func createFanIn(t *testing.T, ts *httptest.Server, id string, r int) {
	t.Helper()
	spec := fmt.Sprintf(`{"kind":"fanin","r":%d}`, r)
	resp, err := http.DefaultClient.Do(mustReq(t, "PUT", ts.URL+"/v1/streams/"+id, spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("creating fanin stream: %d", resp.StatusCode)
	}
}

func mustReq(t *testing.T, method, url, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestFanInKillAndReSync is the acceptance scenario: a follower is
// killed mid-push (its last accepted push covers only a prefix),
// restarts, and re-syncs with a higher epoch. The aggregator must drop
// the stale contribution and converge bit-exactly with a one-shot
// MergeSnapshots of the live inputs.
func TestFanInKillAndReSync(t *testing.T) {
	const r = 16
	ts := newTestServer(t)
	createFanIn(t, ts, "agg", r)

	pts := workload.Take(workload.Disk(11, geom.Pt(0, 0), 1.5), 4000)
	partial := donor(t, r, pts[:200]) // node1 killed mid-stream
	full := donor(t, r, pts[:2000])   // node1 after restart, caught up
	other := donor(t, r, pts[2000:])  // node2, steady

	if code, resp := pushSnap(t, ts, "agg", "node1", 100, partial); code != http.StatusOK {
		t.Fatalf("partial push: %d %v", code, resp)
	}
	if code, resp := pushSnap(t, ts, "agg", "node2", 77, other); code != http.StatusOK {
		t.Fatalf("node2 push: %d %v", code, resp)
	}
	// Restarted node1 pushes with a higher epoch: replaces the stale
	// contribution wholesale.
	if code, resp := pushSnap(t, ts, "agg", "node1", 200, full); code != http.StatusOK {
		t.Fatalf("re-sync push: %d %v", code, resp)
	}
	// A straggler from the dead incarnation arrives late: rejected.
	if code, _ := pushSnap(t, ts, "agg", "node1", 150, partial); code != http.StatusConflict {
		t.Fatalf("stale push: %d, want 409", code)
	}

	// Bit-exact vs one-shot MergeSnapshots in source-name order.
	oneShot, err := streamhull.MergeSnapshots(r, full, other)
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot.Hull().Vertices()
	got, _ := hullVertices(t, ts, "agg")
	if len(got) != len(want) {
		t.Fatalf("aggregate hull has %d vertices, one-shot merge %d", len(got), len(want))
	}
	for i := range got {
		xy := got[i].([]any)
		if xy[0].(float64) != want[i].X || xy[1].(float64) != want[i].Y {
			t.Fatalf("vertex %d: %v vs %v — not bit-exact", i, xy, want[i])
		}
	}

	// Detail lists both sources with their epochs.
	code, detail := do(t, "GET", ts.URL+"/v1/streams/agg", nil)
	if code != http.StatusOK {
		t.Fatalf("detail: %d", code)
	}
	srcs := detail["sources"].([]any)
	if len(srcs) != 2 {
		t.Fatalf("detail sources = %v", srcs)
	}
	first := srcs[0].(map[string]any)
	if first["source"] != "node1" || first["epoch"].(float64) != 200 {
		t.Errorf("source[0] = %v, want node1@200", first)
	}
	if n := detail["n"].(float64); n != 4000 {
		t.Errorf("aggregate n = %g, want 4000", n)
	}
}

func TestFanInPushValidationAndKindChecks(t *testing.T) {
	ts := newTestServer(t)
	createFanIn(t, ts, "agg", 16)
	snap := donor(t, 16, workload.Take(workload.Disk(2, geom.Pt(0, 0), 1), 100))

	// Missing / non-numeric epoch.
	data, _ := snap.Encode()
	resp, err := http.Post(ts.URL+"/v1/streams/agg/snapshot?source=n1", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("push without epoch: %d, want 400", resp.StatusCode)
	}

	// Push into a non-fanin stream.
	ingest(t, ts, "plain", []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	if code, _ := pushSnap(t, ts, "plain", "n1", 1, snap); code != http.StatusConflict {
		t.Errorf("push into plain stream: %d, want 409", code)
	}

	// Push to a missing stream: 404 (followers create the aggregate first).
	if code, _ := pushSnap(t, ts, "ghost", "n1", 1, snap); code != http.StatusNotFound {
		t.Errorf("push to missing stream: %d, want 404", code)
	}

	// Direct point ingest into the aggregate: 409, and nothing applied.
	code, resp2 := do(t, "POST", ts.URL+"/v1/streams/agg/points",
		map[string]any{"points": [][2]float64{{0, 0}}})
	if code != http.StatusConflict {
		t.Errorf("point ingest into aggregate: %d %v, want 409", code, resp2)
	}
}

func TestFanInDropSourceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	createFanIn(t, ts, "agg", 16)
	snap := donor(t, 16, workload.Take(workload.Disk(3, geom.Pt(0, 0), 1), 200))
	if code, _ := pushSnap(t, ts, "agg", "dead", 5, snap); code != http.StatusOK {
		t.Fatal("push")
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/streams/agg/sources/dead", nil); code != http.StatusOK {
		t.Errorf("drop source: %d", code)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/streams/agg/sources/dead", nil); code != http.StatusNotFound {
		t.Errorf("double drop: %d, want 404", code)
	}
	code, detail := do(t, "GET", ts.URL+"/v1/streams/agg", nil)
	if code != http.StatusOK || detail["n"].(float64) != 0 {
		t.Errorf("after drop: %d n=%v", code, detail["n"])
	}
	// Dropping from a non-fanin stream is a 409.
	ingest(t, ts, "plain", []geom.Point{geom.Pt(0, 0)})
	if code, _ := do(t, "DELETE", ts.URL+"/v1/streams/plain/sources/x", nil); code != http.StatusConflict {
		t.Errorf("drop on plain stream: %d, want 409", code)
	}
}

// TestFanInPusherEndToEnd drives the real follower loop against two real
// servers: a follower ingests points, its Pusher pushes snapshots to the
// aggregator, and the aggregator's same-named stream converges.
func TestFanInPusherEndToEnd(t *testing.T) {
	aggSrv := mustNew(t, Config{DefaultR: 16})
	agg := httptest.NewServer(aggSrv)
	t.Cleanup(agg.Close)
	folSrv := mustNew(t, Config{DefaultR: 16})
	fol := httptest.NewServer(folSrv)
	t.Cleanup(fol.Close)

	pts := workload.Take(workload.Disk(4, geom.Pt(1, 1), 2), 1500)
	ingest(t, fol, "clicks", pts)

	epoch := uint64(0)
	p, err := fanin.NewPusher(fanin.PusherConfig{
		Target: agg.URL, Source: "follower-1",
		Collect: folSrv.StreamSnapshots,
		Epoch:   func() uint64 { epoch++; return epoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PushOnce(context.Background()); err != nil {
		t.Fatalf("PushOnce: %v", err)
	}
	code, detail := do(t, "GET", agg.URL+"/v1/streams/clicks", nil)
	if code != http.StatusOK {
		t.Fatalf("aggregator detail: %d %v", code, detail)
	}
	if detail["algo"] != "fanin" {
		t.Errorf("aggregate kind = %v", detail["algo"])
	}
	if n := detail["n"].(float64); n != 1500 {
		t.Errorf("aggregate n = %g, want 1500", n)
	}
	// More points on the follower; a second push refreshes the source.
	ingest(t, fol, "clicks", workload.Take(workload.Disk(5, geom.Pt(1, 1), 2), 500))
	if err := p.PushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, detail = do(t, "GET", agg.URL+"/v1/streams/clicks", nil)
	if n := detail["n"].(float64); n != 2000 {
		t.Errorf("aggregate n after second push = %g, want 2000", n)
	}
}

// TestFanInPusherSurvivesAggregatorRestart: an in-memory aggregator
// that restarts forgets the aggregate stream; the follower's next push
// must re-create it instead of 404ing forever on a stale created-cache.
func TestFanInPusherSurvivesAggregatorRestart(t *testing.T) {
	aggSrv := mustNew(t, Config{DefaultR: 16})
	agg := httptest.NewServer(aggSrv)
	folSrv := mustNew(t, Config{DefaultR: 16})
	fol := httptest.NewServer(folSrv)
	t.Cleanup(fol.Close)

	ingest(t, fol, "clicks", workload.Take(workload.Disk(8, geom.Pt(0, 0), 1), 200))
	epoch := uint64(0)
	p, err := fanin.NewPusher(fanin.PusherConfig{
		Target: agg.URL, Source: "f1",
		Collect: folSrv.StreamSnapshots,
		Epoch:   func() uint64 { epoch++; return epoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart" the aggregator: same URL, fresh in-memory state.
	agg.Config.Handler = http.HandlerFunc(mustNew(t, Config{DefaultR: 16}).ServeHTTP)
	if err := p.PushOnce(context.Background()); err != nil {
		// First push after the restart may 404 (the pusher only learns
		// the aggregate is gone from the failure); the next one must
		// re-create and succeed.
		if err2 := p.PushOnce(context.Background()); err2 != nil {
			t.Fatalf("push never recovered after aggregator restart: %v then %v", err, err2)
		}
	}
	code, detail := do(t, "GET", agg.URL+"/v1/streams/clicks", nil)
	if code != http.StatusOK || detail["n"].(float64) != 200 {
		t.Errorf("after aggregator restart: %d n=%v, want 200", code, detail["n"])
	}
	agg.Close()
}

// TestFanInDefaultSpecDoesNotAutocreateOnIngest: with a fan-in default
// spec, a point POST to a missing stream must 409 without leaving an
// orphan aggregate behind.
func TestFanInDefaultSpecDoesNotAutocreateOnIngest(t *testing.T) {
	srv := mustNew(t, Config{DefaultSpec: `{"kind":"fanin","r":16}`})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	code, resp := do(t, "POST", ts.URL+"/v1/streams/ghost/points",
		map[string]any{"points": [][2]float64{{1, 1}}})
	if code != http.StatusConflict {
		t.Fatalf("ingest with fanin default: %d %v, want 409", code, resp)
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/streams/ghost", nil); code != http.StatusNotFound {
		t.Errorf("rejected ingest auto-created the aggregate anyway: %d", code)
	}
	// Explicitly created aggregates still work with the same default.
	createFanIn(t, ts, "agg", 16)
	if code, _ := pushSnap(t, ts, "agg", "n1", 1,
		donor(t, 16, workload.Take(workload.Disk(9, geom.Pt(0, 0), 1), 50))); code != http.StatusOK {
		t.Errorf("push into explicit aggregate: %d", code)
	}
}

// TestFanInDurableRestartRecoversEmptyAggregate: an aggregate's WAL
// persists only its spec (source contributions are soft state), so a
// restart recovers an empty aggregate of the right kind that re-fills
// from the followers' next pushes.
func TestFanInDurableRestartRecoversEmptyAggregate(t *testing.T) {
	dir := t.TempDir()
	srv := mustNew(t, Config{DataDir: dir})
	ts := httptest.NewServer(srv)
	createFanIn(t, ts, "agg", 16)
	snap := donor(t, 16, workload.Take(workload.Disk(6, geom.Pt(0, 0), 1), 300))
	if code, _ := pushSnap(t, ts, "agg", "n1", 1, snap); code != http.StatusOK {
		t.Fatal("push")
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustNew(t, Config{DataDir: dir})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)
	t.Cleanup(func() { _ = srv2.Close() })
	code, detail := do(t, "GET", ts2.URL+"/v1/streams/agg", nil)
	if code != http.StatusOK {
		t.Fatalf("recovered detail: %d %v", code, detail)
	}
	if detail["algo"] != "fanin" {
		t.Fatalf("recovered kind = %v", detail["algo"])
	}
	if n := detail["n"].(float64); n != 0 {
		t.Errorf("recovered aggregate n = %g, want 0 (soft state)", n)
	}
	// Re-sync: the follower's next push restores the contribution.
	if code, _ := pushSnap(t, ts2, "agg", "n1", 2, snap); code != http.StatusOK {
		t.Fatal("re-push after restart")
	}
	_, detail = do(t, "GET", ts2.URL+"/v1/streams/agg", nil)
	if n := detail["n"].(float64); n != 300 {
		t.Errorf("re-synced aggregate n = %g, want 300", n)
	}
}
