package server

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/fanin"
	"github.com/streamgeom/streamhull/internal/workload"
)

// cascadeNode is one tier member: a real server plus the pusher that
// forwards its state upstream (nil for the global root).
type cascadeNode struct {
	name   string
	srv    *Server
	ts     *httptest.Server
	pusher *fanin.Pusher
	epoch  uint64 // counter epoch base; restarts jump it forward
}

// newCascadeNode builds one tier member pushing to target (nil pusher
// when target is ""). Leaves push their plain streams; region nodes
// push their fan-in aggregates too (the cascade collect).
func newCascadeNode(t *testing.T, name, target string, epochBase uint64, aggregate bool) *cascadeNode {
	t.Helper()
	srv := mustNew(t, Config{DefaultR: 16})
	n := &cascadeNode{name: name, srv: srv, ts: httptest.NewServer(srv), epoch: epochBase}
	t.Cleanup(n.ts.Close)
	if target == "" {
		return n
	}
	collect := srv.StreamSnapshots
	if aggregate {
		collect = srv.StreamSnapshotsCascade
	}
	p, err := fanin.NewPusher(fanin.PusherConfig{
		Target: target, Source: name, Deltas: true,
		Collect: collect,
		Epoch:   func() uint64 { n.epoch++; return n.epoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.pusher = p
	return n
}

func (n *cascadeNode) push(t *testing.T) {
	t.Helper()
	if err := n.pusher.PushOnce(context.Background()); err != nil {
		t.Fatalf("%s: push: %v", n.name, err)
	}
}

// TestCascadeTopologies drives real leaf → region → global cascades —
// every hop a real server and a real pusher, deltas on — and asserts
// the global aggregate is bit-exact with a one-shot in-process
// MergeSnapshots composition over the same topology: each region is
// MergeSnapshots of its leaves' snapshots (leaves in name order), the
// global is MergeSnapshots of the region snapshots (regions in name
// order) — exactly the order the fan-in tables merge in. The oracle
// never touches the network, so the assertion isolates what the PR
// added: the delta wire, the ack/epoch discipline and restart
// supersede must contribute ZERO drift over clean in-process merging.
func TestCascadeTopologies(t *testing.T) {
	const r = 16
	cases := []struct {
		name    string
		regions map[string][]string // region name -> leaf names
		restart string              // leaf to restart mid-cascade ("" = none)
	}{
		{
			name:    "two leaves one region",
			regions: map[string][]string{"region-a": {"leaf-1", "leaf-2"}},
		},
		{
			name: "two regions three leaves",
			regions: map[string][]string{
				"region-a": {"leaf-1", "leaf-2"},
				"region-b": {"leaf-3"},
			},
		},
		{
			name: "leaf restart mid-cascade",
			regions: map[string][]string{
				"region-a": {"leaf-1", "leaf-2"},
				"region-b": {"leaf-3"},
			},
			restart: "leaf-2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			global := newCascadeNode(t, "global", "", 0, false)
			regionNames := make([]string, 0, len(tc.regions))
			for name := range tc.regions {
				regionNames = append(regionNames, name)
			}
			sort.Strings(regionNames)

			regions := make(map[string]*cascadeNode)
			leaves := make(map[string]*cascadeNode)
			leafRegion := make(map[string]string)
			for _, rn := range regionNames {
				regions[rn] = newCascadeNode(t, rn, global.ts.URL, 0, true)
				for _, ln := range tc.regions[rn] {
					leaves[ln] = newCascadeNode(t, ln, regions[rn].ts.URL, 0, false)
					leafRegion[ln] = rn
				}
			}

			// feed ingests a fresh batch into one leaf's stream.
			seedOf := map[string]int64{}
			feed := func(ln string, n int) {
				seedOf[ln]++
				pts := workload.Take(workload.Disk(seedOf[ln]*31+int64(len(ln)),
					geom.Pt(float64(len(ln)), float64(seedOf[ln])), 2), n)
				ingest(t, leaves[ln].ts, "metrics", pts)
			}
			// cascadeOnce runs one full propagation: leaves push, then
			// regions push their aggregates.
			cascadeOnce := func() {
				for _, ln := range sortedKeys(leaves) {
					leaves[ln].push(t)
				}
				for _, rn := range regionNames {
					regions[rn].push(t)
				}
			}
			// oracle composes one-shot merges over the CURRENT leaf
			// snapshots in cascade order and returns the expected global
			// sample.
			oracle := func() []geom.Point {
				var regionSnaps []streamhull.Snapshot
				for _, rn := range regionNames {
					lns := append([]string(nil), tc.regions[rn]...)
					sort.Strings(lns)
					var snaps []streamhull.Snapshot
					for _, ln := range lns {
						snaps = append(snaps, getSnapshot(t, leaves[ln].ts, "metrics"))
					}
					m, err := streamhull.MergeSnapshots(r, snaps...)
					if err != nil {
						t.Fatal(err)
					}
					regionSnaps = append(regionSnaps, m.Snapshot())
				}
				g, err := streamhull.MergeSnapshots(r, regionSnaps...)
				if err != nil {
					t.Fatal(err)
				}
				return g.Snapshot().Points
			}
			assertGlobal := func(stage string) {
				wantPts := oracle()
				got := getSnapshot(t, global.ts, "metrics")
				if len(got.Points) != len(wantPts) {
					t.Fatalf("%s: global sample has %d points, flat merge %d",
						stage, len(got.Points), len(wantPts))
				}
				for i := range got.Points {
					if got.Points[i] != wantPts[i] {
						t.Fatalf("%s: sample[%d] = %v, flat merge %v — not bit-exact",
							stage, i, got.Points[i], wantPts[i])
					}
				}
			}

			// Round 1: initial ingest everywhere, full pushes up the tiers.
			for ln := range leaves {
				feed(ln, 400)
			}
			cascadeOnce()
			assertGlobal("round 1")

			// Round 2: incremental ingest on every leaf — this round rides
			// delta frames on both hops.
			for ln := range leaves {
				feed(ln, 200)
			}
			cascadeOnce()
			assertGlobal("round 2")

			// The global tier really sees one source per REGION, not per
			// leaf: a leaf restart must propagate through its region only.
			detailCode, detail := do(t, "GET", global.ts.URL+"/v1/streams/metrics", nil)
			if detailCode != 200 {
				t.Fatalf("global detail: %d", detailCode)
			}
			if srcs := detail["sources"].([]any); len(srcs) != len(regionNames) {
				t.Fatalf("global sees %d sources, want %d regions", len(srcs), len(regionNames))
			}

			if tc.restart == "" {
				return
			}
			// Restart the leaf: a fresh server (its old stream state is
			// gone — in-memory follower), a fresh pusher whose epochs jump
			// far ahead (wall-clock epochs after a real restart), and new
			// data. The region supersedes the leaf's old contribution, the
			// region's own next push supersedes the region at the global
			// tier, and the flat oracle — computed from the CURRENT leaf
			// snapshots — must match again.
			rn := leafRegion[tc.restart]
			old := leaves[tc.restart]
			old.ts.Close()
			leaves[tc.restart] = newCascadeNode(t, tc.restart, regions[rn].ts.URL,
				old.epoch+1_000_000, false)
			feed(tc.restart, 250)
			cascadeOnce()
			assertGlobal("after leaf restart")
		})
	}
}

func sortedKeys[V any](m map[string]*V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestCascadeDeltaFramesOnBothHops pins that the cascade actually used
// the delta wire in steady state (not silently falling back to full
// pushes): after an acked push and an unchanged re-push, both tiers'
// pushers report delta pushes.
func TestCascadeDeltaFramesOnBothHops(t *testing.T) {
	global := newCascadeNode(t, "global", "", 0, false)
	region := newCascadeNode(t, "region-a", global.ts.URL, 0, true)
	leaf := newCascadeNode(t, "leaf-1", region.ts.URL, 0, false)

	ingest(t, leaf.ts, "metrics",
		workload.Take(workload.Disk(3, geom.Pt(0, 0), 1), 300))
	for round := 0; round < 3; round++ {
		leaf.push(t)
		region.push(t)
	}
	if st := leaf.pusher.Stats(); st.DeltaPushes == 0 {
		t.Errorf("leaf pusher sent no delta frames: %+v", st)
	}
	if st := region.pusher.Stats(); st.DeltaPushes == 0 {
		t.Errorf("region pusher sent no delta frames: %+v", st)
	}
	// And the delta bytes stayed below the full-snapshot bytes they
	// replaced: the whole point of the wire format.
	st := leaf.pusher.Stats()
	if st.BytesPushed == 0 {
		t.Fatal("no bytes accounted")
	}
	full := len(mustEncode(t, getSnapshot(t, leaf.ts, "metrics")))
	perPush := st.BytesPushed / st.Pushes
	if perPush >= uint64(full) {
		t.Errorf("mean bytes/push %d not below full snapshot %d", perPush, full)
	}
}

func mustEncode(t *testing.T, s streamhull.Snapshot) []byte {
	t.Helper()
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
