package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/internal/wal"
)

// Durable streams: when Config.DataDir is set, every lifetime stream
// owns a directory under it holding a write-ahead log of its points
// plus periodic snapshot checkpoints (see internal/wal). Ingest appends
// to the log before touching the in-memory summary; every
// CheckpointEvery points the stream's ≤ 2r+1-point snapshot is sealed
// and the log prefix it covers is deleted — the paper's space bound is
// what keeps stored state O(r) per stream regardless of stream length.
// On New the server scans DataDir and rebuilds each stream from its
// checkpoint plus the log tail.
//
// Sliding-window streams stay memory-only: their state depends on
// wall-clock arrival times that a replay cannot reproduce.

// durableWindow reports whether a stream with this window spec is
// persisted.
func durableWindow(window string) bool { return window == "" }

// checkpointable reports whether an algorithm's snapshots can serve as
// restart state. Exact streams keep their full log instead (no
// compaction, exact recovery).
func checkpointable(algo string) bool { return algo == "adaptive" || algo == "uniform" }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) walOptions() wal.Options {
	return wal.Options{
		SegmentBytes: s.cfg.SegmentBytes,
		Sync:         s.cfg.Sync,
		Interval:     s.cfg.FsyncInterval,
	}
}

func (s *Server) streamDir(id string) string {
	return filepath.Join(s.cfg.DataDir, encodeStreamDir(id))
}

// openStorage creates the on-disk state for a new durable stream and
// returns its log.
func (s *Server) openStorage(id, algo string, r int) (*wal.Log, error) {
	dir := s.streamDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating stream storage: %w", err)
	}
	if err := wal.SaveMeta(dir, wal.Meta{Algo: algo, R: r}); err != nil {
		return nil, err
	}
	return wal.Open(dir, s.walOptions())
}

// recoverStreams restores every stream directory found under DataDir:
// latest checkpoint first, then the surviving log tail, tolerating a
// record torn by the previous crash.
func (s *Server) recoverStreams() error {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id, ok := decodeStreamDir(e.Name())
		if !ok {
			s.logf("wal: skipping unrecognized directory %q", e.Name())
			continue
		}
		st, err := s.recoverStream(id, filepath.Join(s.cfg.DataDir, e.Name()))
		if err != nil {
			return fmt.Errorf("recovering stream %q: %w", id, err)
		}
		s.streams[id] = st
	}
	return nil
}

func (s *Server) recoverStream(id, dir string) (*stream, error) {
	rec, err := streamhull.RecoverFromWAL(dir)
	if err != nil {
		return nil, err
	}
	if rec.Torn {
		s.logf("wal: stream %q: dropped a torn tail record during recovery", id)
	}
	log, err := wal.Open(dir, s.walOptions())
	if err != nil {
		return nil, err
	}
	s.logf("wal: recovered stream %q: algo=%s r=%d n=%d (checkpoint=%v, %d replayed points)",
		id, rec.Algo, rec.R, rec.Summary.N(), rec.HasCheckpoint, rec.Points)
	return &stream{sum: rec.Summary, algo: rec.Algo, r: rec.R, log: log}, nil
}

// maybeCheckpointLocked seals the stream's current snapshot into its
// log once enough points have accumulated, then re-bases the live
// summary on that snapshot so a later recovery reproduces the served
// state exactly. Caller holds st.mu.
func (s *Server) maybeCheckpointLocked(id string, st *stream) {
	if st.log == nil || !checkpointable(st.algo) || st.sinceCkpt < s.cfg.CheckpointEvery {
		return
	}
	st.sinceCkpt = 0
	type snapshotter interface{ Snapshot() streamhull.Snapshot }
	sn, ok := st.sum.(snapshotter)
	if !ok {
		return
	}
	snap := sn.Snapshot()
	data, err := snap.MarshalBinary()
	if err != nil {
		s.logf("wal: stream %q: encoding checkpoint: %v", id, err)
		return
	}
	if err := st.log.Checkpoint(data); err != nil {
		s.logf("wal: stream %q: checkpoint: %v", id, err)
		return
	}
	restored, err := streamhull.SummaryFromSnapshot(snap)
	if err != nil {
		s.logf("wal: stream %q: re-basing on checkpoint: %v", id, err)
		return
	}
	st.sum = restored
}

// dropStorage removes a deleted stream's directory.
func (s *Server) dropStorage(id string, st *stream) {
	if st.log == nil {
		return
	}
	if err := st.log.Close(); err != nil {
		s.logf("wal: stream %q: closing log: %v", id, err)
	}
	if err := os.RemoveAll(s.streamDir(id)); err != nil {
		s.logf("wal: stream %q: removing storage: %v", id, err)
	}
}

const dirSafe = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"

// encodeStreamDir maps a stream id to a filesystem-safe directory name:
// safe characters pass through, everything else (including '.' so "."
// and ".." cannot occur) is percent-escaped.
func encodeStreamDir(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		if strings.IndexByte(dirSafe, c) >= 0 {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// decodeStreamDir inverts encodeStreamDir.
func decodeStreamDir(name string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '%':
			if i+2 >= len(name) {
				return "", false
			}
			hi, lo := hexVal(name[i+1]), hexVal(name[i+2])
			if hi < 0 || lo < 0 {
				return "", false
			}
			b.WriteByte(byte(hi<<4 | lo))
			i += 2
		case strings.IndexByte(dirSafe, c) >= 0:
			b.WriteByte(c)
		default:
			return "", false
		}
	}
	return b.String(), true
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}
