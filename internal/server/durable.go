package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/internal/wal"
)

// Durable streams: when Config.DataDir is set, every stream owns a
// directory under it holding a write-ahead log of its points plus
// periodic checkpoints (see internal/wal). Ingest appends to the log
// before touching the in-memory summary; the meta sidecar stores the
// stream's Spec, so recovery can rebuild any summary kind — New scans
// DataDir and restores each stream from its checkpoint plus the log
// tail, replaying the same batches InsertBatch originally applied.
//
// Checkpoints compact the log to the summary's live state:
//
//   - adaptive and uniform streams seal their O(r) Snapshot and re-base
//     the live summary on it, so recovery reproduces the served state
//     exactly;
//   - windowed streams seal their full exponential-histogram bucket
//     structure (O(r log n + HeadCap) points, see
//     streamhull.WindowedHull.MarshalState) — bit-exact without
//     re-basing, since nothing is lost in the capture;
//   - exact, partial and partitioned streams have no faithful compact
//     capture and keep their whole log instead (replay from the start
//     is deterministic, so recovery is still exact).

// checkpointable reports whether a summary kind has a faithful
// checkpoint representation; other kinds retain their full log.
func checkpointable(kind streamhull.Kind) bool {
	switch kind {
	case streamhull.KindAdaptive, streamhull.KindUniform, streamhull.KindWindowed:
		return true
	}
	return false
}

func (s *Server) walOptions() wal.Options {
	return wal.Options{
		SegmentBytes: s.cfg.SegmentBytes,
		Sync:         s.cfg.Sync,
		Interval:     s.cfg.FsyncInterval,
		Logger:       s.logger,
	}
}

func (s *Server) streamDir(id string) string {
	return filepath.Join(s.cfg.DataDir, encodeStreamDir(id))
}

// openStorage creates the on-disk state for a new durable stream and
// returns its log.
func (s *Server) openStorage(id string, spec streamhull.Spec) (*wal.Log, error) {
	meta, err := streamhull.MetaForSpec(spec)
	if err != nil {
		return nil, err
	}
	dir := s.streamDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating stream storage: %w", err)
	}
	if err := wal.SaveMeta(dir, meta); err != nil {
		return nil, err
	}
	return wal.Open(dir, s.walOptions())
}

// recoverStreams restores every stream directory found under DataDir:
// latest checkpoint first, then the surviving log tail, tolerating a
// record torn by the previous crash.
func (s *Server) recoverStreams() error {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		// Directory names encode the internal (tenant-qualified) key.
		key, ok := decodeStreamDir(e.Name())
		if !ok {
			s.logger.Warn("wal: skipping unrecognized directory", "dir", e.Name())
			continue
		}
		st, err := s.recoverStream(key, filepath.Join(s.cfg.DataDir, e.Name()))
		if err != nil {
			return fmt.Errorf("recovering stream %q: %w", key, err)
		}
		st.tenant, _ = splitTenant(key)
		// Recovered state is adopted, not re-reserved: it must never be
		// evicted by a quota tightened across the restart.
		s.ledger.AdoptStream(st.tenant, st.bytes)
		s.streams[key] = st
	}
	return nil
}

func (s *Server) recoverStream(id, dir string) (*stream, error) {
	rec, err := streamhull.RecoverFromWAL(dir)
	if err != nil {
		return nil, err
	}
	tenant, _ := splitTenant(id)
	if rec.Torn {
		s.logger.Warn("wal: dropped a torn tail record during recovery",
			"stream", id, "tenant", tenant)
	}
	log, err := wal.Open(dir, s.walOptions())
	if err != nil {
		return nil, err
	}
	s.logger.Info("wal: recovered stream",
		"stream", id, "tenant", tenant, "spec", fmt.Sprint(rec.Spec),
		"n", rec.Summary.N(), "checkpoint", rec.HasCheckpoint,
		"replayed_points", rec.Points)
	st := &stream{spec: rec.Spec, log: log,
		bytes: int64(rec.Summary.N()) * bytesPerPoint}
	st.setSummary(rec.Summary)
	return st, nil
}

// maybeCheckpointLocked seals the stream's current state into its log
// once enough points have accumulated. For adaptive and uniform streams
// the payload is the O(r) Snapshot and the live summary is re-based on
// it so a later recovery reproduces the served state exactly; windowed
// streams seal their full bucket structure, which loses nothing and
// needs no re-base. Caller holds st.mu.
func (s *Server) maybeCheckpointLocked(id string, st *stream) {
	if st.sinceCkpt < s.cfg.CheckpointEvery {
		return
	}
	s.checkpointLocked(id, st)
}

// checkpointLocked seals a checkpoint now (see maybeCheckpointLocked).
// Close also calls it directly, so a graceful shutdown leaves every
// checkpointable stream compacted — in particular a time-windowed
// stream's bucket timestamps are sealed, and a routine restart does not
// re-stamp its log tail at recovery time. Caller holds st.mu.
func (s *Server) checkpointLocked(id string, st *stream) {
	if st.log == nil || !checkpointable(st.spec.Kind) {
		return
	}
	st.sinceCkpt = 0
	if wh, ok := st.sum.(*streamhull.WindowedHull); ok {
		data, err := wh.MarshalState()
		if err != nil {
			s.logger.Error("wal: encoding windowed checkpoint failed",
				"stream", id, "tenant", st.tenant, "err", err)
			return
		}
		if err := st.log.Checkpoint(data); err != nil {
			s.logger.Error("wal: checkpoint failed",
				"stream", id, "tenant", st.tenant, "err", err)
		}
		return
	}
	sn, ok := st.sum.(streamhull.Snapshotter)
	if !ok {
		return
	}
	snap := sn.Snapshot()
	data, err := snap.MarshalBinary()
	if err != nil {
		s.logger.Error("wal: encoding checkpoint failed",
			"stream", id, "tenant", st.tenant, "err", err)
		return
	}
	if err := st.log.Checkpoint(data); err != nil {
		s.logger.Error("wal: checkpoint failed",
			"stream", id, "tenant", st.tenant, "err", err)
		return
	}
	restored, err := streamhull.SummaryFromSnapshot(snap)
	if err != nil {
		s.logger.Error("wal: re-basing on checkpoint failed",
			"stream", id, "tenant", st.tenant, "err", err)
		return
	}
	// Swapping the summary also swaps the read cache: the fresh
	// summary's epoch restarts at zero, so a stale cache keyed on the
	// old counter must not survive the re-base. Pair answers keyed on
	// the retired cache are purged too — they are unreachable (pair keys
	// carry the cache identity) and would otherwise pin the old summary.
	old := st.cache.Load()
	st.setSummary(restored)
	s.pairs.purge(old)
}

// dropStorage removes a deleted stream's directory.
func (s *Server) dropStorage(id string, st *stream) {
	if st.log == nil {
		return
	}
	if err := st.log.Close(); err != nil {
		s.logger.Error("wal: closing log failed",
			"stream", id, "tenant", st.tenant, "err", err)
	}
	if err := os.RemoveAll(s.streamDir(id)); err != nil {
		s.logger.Error("wal: removing storage failed",
			"stream", id, "tenant", st.tenant, "err", err)
	}
}

const dirSafe = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"

// encodeStreamDir maps a stream id to a filesystem-safe directory name:
// safe characters pass through, everything else (including '.' so "."
// and ".." cannot occur) is percent-escaped.
func encodeStreamDir(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		if strings.IndexByte(dirSafe, c) >= 0 {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// decodeStreamDir inverts encodeStreamDir.
func decodeStreamDir(name string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '%':
			if i+2 >= len(name) {
				return "", false
			}
			hi, lo := hexVal(name[i+1]), hexVal(name[i+2])
			if hi < 0 || lo < 0 {
				return "", false
			}
			b.WriteByte(byte(hi<<4 | lo))
			i += 2
		case strings.IndexByte(dirSafe, c) >= 0:
			b.WriteByte(c)
		default:
			return "", false
		}
	}
	return b.String(), true
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}
