package server

import (
	"fmt"
	"sort"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/internal/store"
)

// Durable streams: when the server has a storage engine (Config.DataDir
// or an injected Config.Store), every stream's ingest is appended to its
// log through a store.Appender before touching the in-memory summary,
// the stream's Spec is persisted by the backend, and New recovers every
// stream the store lists — checkpoint first, then the surviving log
// tail, replaying the same batches InsertBatch originally applied.
//
// Checkpoints compact the log to the summary's live state:
//
//   - adaptive and uniform streams seal their O(r) Snapshot and re-base
//     the live summary on it, so recovery reproduces the served state
//     exactly;
//   - windowed streams seal their full exponential-histogram bucket
//     structure (O(r log n + HeadCap) points, see
//     streamhull.WindowedHull.MarshalState) — bit-exact without
//     re-basing, since nothing is lost in the capture;
//   - exact, partial and partitioned streams have no faithful compact
//     capture and keep their whole log instead (replay from the start
//     is deterministic, so recovery is still exact).
//
// The same O(r) checkpoint is what makes the cold tier (coldtier.go)
// cheap: evicting an idle stream seals its checkpoint and drops the
// summary, and rehydration is one Load of a few hundred bytes.

// checkpointable reports whether a summary kind has a faithful
// checkpoint representation; other kinds retain their full log.
func checkpointable(kind streamhull.Kind) bool {
	switch kind {
	case streamhull.KindAdaptive, streamhull.KindUniform, streamhull.KindWindowed:
		return true
	}
	return false
}

// recoverStreams restores every stream the store lists: latest
// checkpoint first, then the surviving log tail, tolerating a record
// torn by the previous crash. Streams are recovered in key order and
// readiness progress is published after each one, so /readyz can report
// "recovered k of n" while an async recovery runs. With MaxResident
// set, recovery itself respects the cap: each stream beyond it is
// evicted back to its checkpoint right after adoption, so startup RSS
// stays bounded no matter how many streams the store holds.
func (s *Server) recoverStreams() error {
	entries, err := s.store.List()
	if err != nil {
		return fmt.Errorf("scanning stream store: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	s.health.StartRecovery(len(entries))
	for i, e := range entries {
		st, err := s.recoverStream(e)
		if err != nil {
			return fmt.Errorf("recovering stream %q: %w", e.Key, err)
		}
		// Recovered state is adopted, not re-reserved: it must never be
		// evicted by a quota tightened across the restart.
		s.ledger.AdoptStream(st.tenant, st.bytes)
		s.mu.Lock()
		s.streams[e.Key] = st
		s.mu.Unlock()
		s.admit(e.Key, st)
		s.touch(st)
		s.enforceCap(nil)
		s.health.SetRecovered(i + 1)
	}
	s.health.FinishRecovery()
	return nil
}

func (s *Server) recoverStream(e store.Entry) (*stream, error) {
	rec, err := s.store.Load(e.Key)
	if err != nil {
		return nil, err
	}
	if rec.Torn {
		s.logger.Warn("wal: dropped a torn tail record during recovery",
			"stream", e.Key, "tenant", e.Tenant)
	}
	app, err := s.store.Open(e.Key)
	if err != nil {
		return nil, err
	}
	s.logger.Info("wal: recovered stream",
		"stream", e.Key, "tenant", e.Tenant, "spec", fmt.Sprint(rec.Spec),
		"n", rec.Summary.N(), "checkpoint", rec.HasCheckpoint,
		"replayed_points", rec.Points)
	st := &stream{spec: rec.Spec, tenant: e.Tenant, app: app,
		bytes:     int64(rec.Summary.N()) * bytesPerPoint,
		sinceCkpt: rec.Points}
	st.setSummary(rec.Summary)
	// Recovered time-windowed streams need the expiry sweeper just like
	// freshly created ones.
	if wh, ok := rec.Summary.(*streamhull.WindowedHull); ok && wh.ByTime() {
		s.startSweeper()
	}
	return st, nil
}

// maybeCheckpointLocked seals the stream's current state into its log
// once enough points have accumulated. For adaptive and uniform streams
// the payload is the O(r) Snapshot and the live summary is re-based on
// it so a later recovery reproduces the served state exactly; windowed
// streams seal their full bucket structure, which loses nothing and
// needs no re-base. Caller holds st.mu.
func (s *Server) maybeCheckpointLocked(id string, st *stream) {
	if st.sinceCkpt < s.cfg.CheckpointEvery {
		return
	}
	s.checkpointLocked(id, st)
}

// checkpointLocked seals a checkpoint now (see maybeCheckpointLocked).
// Close and the eviction path also call it directly, so a graceful
// shutdown or an eviction leaves every checkpointable stream compacted —
// in particular a time-windowed stream's bucket timestamps are sealed,
// and neither a routine restart nor a rehydration re-stamps its log
// tail. Caller holds st.mu.
func (s *Server) checkpointLocked(id string, st *stream) {
	if st.app == nil || !checkpointable(st.spec.Kind) {
		return
	}
	st.sinceCkpt = 0
	if wh, ok := st.sum.(*streamhull.WindowedHull); ok {
		data, err := wh.MarshalState()
		if err != nil {
			s.logger.Error("wal: encoding windowed checkpoint failed",
				"stream", id, "tenant", st.tenant, "err", err)
			return
		}
		if err := st.app.Checkpoint(data); err != nil {
			s.logger.Error("wal: checkpoint failed",
				"stream", id, "tenant", st.tenant, "err", err)
		}
		return
	}
	sn, ok := st.sum.(streamhull.Snapshotter)
	if !ok {
		return
	}
	snap := sn.Snapshot()
	data, err := snap.MarshalBinary()
	if err != nil {
		s.logger.Error("wal: encoding checkpoint failed",
			"stream", id, "tenant", st.tenant, "err", err)
		return
	}
	if err := st.app.Checkpoint(data); err != nil {
		s.logger.Error("wal: checkpoint failed",
			"stream", id, "tenant", st.tenant, "err", err)
		return
	}
	restored, err := streamhull.SummaryFromSnapshot(snap)
	if err != nil {
		s.logger.Error("wal: re-basing on checkpoint failed",
			"stream", id, "tenant", st.tenant, "err", err)
		return
	}
	// Swapping the summary also swaps the read cache: the fresh
	// summary's epoch restarts at zero, so a stale cache keyed on the
	// old counter must not survive the re-base. Pair answers keyed on
	// the retired cache are purged too — they are unreachable (pair keys
	// carry the cache identity) and would otherwise pin the old summary.
	old := st.cache.Load()
	st.setSummary(restored)
	s.pairs.purge(old)
}

// dropStorage closes a deleted stream's appender and removes its
// storage. Cold streams have no appender but still own storage, so the
// store delete runs regardless. Caller holds st.mu.
func (s *Server) dropStorage(id string, st *stream) {
	if st.app != nil {
		if err := st.app.Close(); err != nil {
			s.logger.Error("wal: closing log failed",
				"stream", id, "tenant", st.tenant, "err", err)
		}
		st.app = nil
	}
	if s.store == nil {
		return
	}
	if err := s.store.Delete(id); err != nil {
		s.logger.Error("wal: removing storage failed",
			"stream", id, "tenant", st.tenant, "err", err)
	}
}

// encodeStreamDir / decodeStreamDir are the historical names for the
// store package's shared key↔filename encoding (the fswal directory
// layout predates the store extraction; the encoding lives there now).
func encodeStreamDir(id string) string { return store.EncodeDir(id) }

func decodeStreamDir(name string) (string, bool) { return store.DecodeDir(name) }
