package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/workload"
)

var shardedSpecJSON = json.RawMessage(`{"kind":"sharded","shards":4,"inner":{"kind":"adaptive","r":16}}`)

// TestShardedStreamEndToEnd: a sharded stream created from a spec body
// ingests, answers hull and extremal queries, and reports its full
// nested spec in detail and list responses.
func TestShardedStreamEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	code, resp := do(t, "PUT", ts.URL+"/v1/streams/sh", shardedSpecJSON)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, resp)
	}
	if resp["algo"] != "sharded" {
		t.Fatalf("create response algo = %v", resp["algo"])
	}
	pts := workload.Take(workload.Disk(61, geom.Point{}, 1), 4000)
	for i := 0; i < len(pts); i += 250 {
		ingest(t, ts, "sh", pts[i:i+250])
	}
	code, detail := do(t, "GET", ts.URL+"/v1/streams/sh", nil)
	if code != http.StatusOK {
		t.Fatalf("detail: %d %v", code, detail)
	}
	if detail["n"].(float64) != 4000 {
		t.Fatalf("detail n = %v, want 4000", detail["n"])
	}
	spec := detail["spec"].(map[string]any)
	if spec["kind"] != "sharded" || spec["shards"].(float64) != 4 {
		t.Fatalf("detail spec = %v", spec)
	}
	if inner := spec["inner"].(map[string]any); inner["kind"] != "adaptive" || inner["r"].(float64) != 16 {
		t.Fatalf("detail inner spec = %v", spec["inner"])
	}
	code, q := do(t, "GET", ts.URL+"/v1/streams/sh/query?type=diameter", nil)
	if code != http.StatusOK {
		t.Fatalf("diameter: %d %v", code, q)
	}
	if d := q["diameter"].(float64); d < 1.5 || d > 2.05 {
		t.Fatalf("unit-disk diameter = %v", d)
	}
	code, h := do(t, "GET", ts.URL+"/v1/streams/sh/hull", nil)
	if code != http.StatusOK || len(h["vertices"].([]any)) < 3 {
		t.Fatalf("hull: %d %v", code, h)
	}
	// Snapshot travels with the nested spec and restores elsewhere.
	code, snap := do(t, "GET", ts.URL+"/v1/streams/sh/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %v", code, snap)
	}
	code, restored := do(t, "POST", ts.URL+"/v1/streams/sh2/snapshot", snap)
	if code != http.StatusCreated {
		t.Fatalf("restore: %d %v", code, restored)
	}
	if restored["n"].(float64) != 4000 || restored["algo"] != "sharded" {
		t.Fatalf("restored head = %v", restored)
	}
}

// TestShardedConcurrentServerIngest: parallel POSTs to one in-memory
// sharded stream must not race (run under -race) or drop batches — the
// in-memory ingest path deliberately runs outside the stream lock.
func TestShardedConcurrentServerIngest(t *testing.T) {
	ts := newTestServer(t)
	if code, resp := do(t, "PUT", ts.URL+"/v1/streams/conc", shardedSpecJSON); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, resp)
	}
	pts := workload.Take(workload.Gaussian(62, geom.Point{}, 1), 6400)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				b := pts[(w*8+i)*100 : (w*8+i+1)*100]
				body := map[string]any{"points": toPairs(b)}
				if code, resp := do(t, "POST", ts.URL+"/v1/streams/conc/points", body); code != http.StatusOK {
					t.Errorf("ingest: %d %v", code, resp)
					return
				}
			}
		}(w)
	}
	// Concurrent cached reads against the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				do(t, "GET", ts.URL+"/v1/streams/conc/query?type=diameter", nil)
				do(t, "GET", ts.URL+"/v1/streams/conc/hull", nil)
			}
		}()
	}
	wg.Wait()
	_, detail := do(t, "GET", ts.URL+"/v1/streams/conc", nil)
	if n := detail["n"].(float64); n != 6400 {
		t.Fatalf("n = %v after concurrent ingest, want 6400", n)
	}
}

// TestShardedDurableKillRecover: a durable sharded stream survives an
// unclean kill with a bit-identical hull — round-robin dealing replays
// deterministically from the WAL.
func TestShardedDurableKillRecover(t *testing.T) {
	dir := t.TempDir()
	srvA := mustNew(t, durableConfig(dir))
	tsA := httptest.NewServer(srvA)

	code, resp := do(t, "PUT", tsA.URL+"/v1/streams/shd", shardedSpecJSON)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, resp)
	}
	pts := workload.Take(workload.Ellipse(63, 1, 0.4, 0.3), 3000)
	for i := 0; i < len(pts); i += 200 {
		ingest(t, tsA, "shd", pts[i:i+200])
	}
	wantVerts, wantN := hullVertices(t, tsA, "shd")
	tsA.Close() // abandon srvA without Close: simulated kill

	srvB := mustNew(t, durableConfig(dir))
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	defer srvB.Close()
	gotVerts, gotN := hullVertices(t, tsB, "shd")
	if gotN != wantN {
		t.Fatalf("recovered n = %v, want %v", gotN, wantN)
	}
	sameVertices(t, gotVerts, wantVerts)
	_, detail := do(t, "GET", tsB.URL+"/v1/streams/shd", nil)
	spec := detail["spec"].(map[string]any)
	if spec["kind"] != "sharded" || spec["shards"].(float64) != 4 {
		t.Fatalf("recovered spec = %v", spec)
	}
	// The recovered stream keeps ingesting and serving.
	ingest(t, tsB, "shd", pts[:200])
	if code, _ := do(t, "GET", tsB.URL+"/v1/streams/shd/query?type=width", nil); code != http.StatusOK {
		t.Fatal("width query after recovery")
	}
}

// TestQueryValidationErrors: every malformed single-stream query must
// come back as structured 400/404 JSON, never a 200 or a panic.
func TestQueryValidationErrors(t *testing.T) {
	ts := newTestServer(t)
	ingest(t, ts, "qv", workload.Take(workload.Disk(64, geom.Point{}, 1), 50))
	cases := []struct {
		name string
		url  string
		code int
	}{
		{"unknown type", "/v1/streams/qv/query?type=volume", http.StatusBadRequest},
		{"empty type", "/v1/streams/qv/query", http.StatusBadRequest},
		{"bad theta", "/v1/streams/qv/query?type=extent&theta=sideways", http.StatusBadRequest},
		{"missing theta", "/v1/streams/qv/query?type=extent", http.StatusBadRequest},
		{"missing stream query", "/v1/streams/ghost/query?type=diameter", http.StatusNotFound},
		{"missing stream hull", "/v1/streams/ghost/hull", http.StatusNotFound},
		{"missing stream detail", "/v1/streams/ghost", http.StatusNotFound},
		{"missing stream snapshot", "/v1/streams/ghost/snapshot", http.StatusNotFound},
	}
	for _, c := range cases {
		code, resp := do(t, "GET", ts.URL+c.url, nil)
		if code != c.code {
			t.Errorf("%s: got %d (%v), want %d", c.name, code, resp, c.code)
			continue
		}
		if _, ok := resp["error"]; !ok {
			t.Errorf("%s: error is not structured JSON: %v", c.name, resp)
		}
	}
}

// TestPairQueryValidationErrors: the pair endpoint's error paths.
func TestPairQueryValidationErrors(t *testing.T) {
	ts := newTestServer(t)
	ingest(t, ts, "pva", workload.Take(workload.Disk(65, geom.Point{}, 1), 20))
	ingest(t, ts, "pvb", workload.Take(workload.Disk(66, geom.Pt(5, 0), 1), 20))
	cases := []struct {
		name string
		url  string
		code int
	}{
		{"missing a", "/v1/pairs/query?b=pvb&type=distance", http.StatusBadRequest},
		{"missing both", "/v1/pairs/query?type=distance", http.StatusBadRequest},
		{"unknown a", "/v1/pairs/query?a=ghost&b=pvb&type=distance", http.StatusNotFound},
		{"unknown b", "/v1/pairs/query?a=pva&b=ghost&type=distance", http.StatusNotFound},
		{"unknown type", "/v1/pairs/query?a=pva&b=pvb&type=friendship", http.StatusBadRequest},
		{"empty type", "/v1/pairs/query?a=pva&b=pvb", http.StatusBadRequest},
	}
	for _, c := range cases {
		code, resp := do(t, "GET", ts.URL+c.url, nil)
		if code != c.code {
			t.Errorf("%s: got %d (%v), want %d", c.name, code, resp, c.code)
			continue
		}
		if _, ok := resp["error"]; !ok {
			t.Errorf("%s: error is not structured JSON: %v", c.name, resp)
		}
	}
}

// TestCachedReadsStayFresh: queries served from the epoch cache must
// reflect every acknowledged ingest — cache validity, not staleness.
func TestCachedReadsStayFresh(t *testing.T) {
	ts := newTestServer(t)
	ingest(t, ts, "fresh", []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)})
	_, q1 := do(t, "GET", ts.URL+"/v1/streams/fresh/query?type=diameter", nil)
	// Repeat query: served from cache, same answer.
	_, q2 := do(t, "GET", ts.URL+"/v1/streams/fresh/query?type=diameter", nil)
	if q1["diameter"] != q2["diameter"] {
		t.Fatalf("repeat query changed: %v vs %v", q1["diameter"], q2["diameter"])
	}
	// A stretching ingest must show up immediately.
	ingest(t, ts, "fresh", []geom.Point{geom.Pt(100, 0)})
	_, q3 := do(t, "GET", ts.URL+"/v1/streams/fresh/query?type=diameter", nil)
	if q3["diameter"].(float64) < 100 {
		t.Fatalf("cached diameter %v ignores the new extreme", q3["diameter"])
	}
	_, h := do(t, "GET", ts.URL+"/v1/streams/fresh/hull", nil)
	if h["n"].(float64) != 4 {
		t.Fatalf("cached hull n = %v, want 4", h["n"])
	}
}
