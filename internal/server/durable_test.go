package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	streamhull "github.com/streamgeom/streamhull"
	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/wal"
	"github.com/streamgeom/streamhull/internal/workload"
)

// durableConfig keeps durability tests deterministic and fast: no
// background fsync timers, small checkpoints where a test wants them.
// STREAMHULL_STORE_BACKEND (CI's backend matrix) re-runs the whole
// durable suite against the named storage engine; unset means fswal.
func durableConfig(dir string) Config {
	return Config{DefaultR: 16, DataDir: dir, Sync: wal.SyncNone,
		StoreBackend: os.Getenv("STREAMHULL_STORE_BACKEND")}
}

// fswalLayout reports whether the suite is running against the fswal
// backend, whose per-stream directory layout some assertions inspect
// directly.
func fswalLayout() bool {
	b := os.Getenv("STREAMHULL_STORE_BACKEND")
	return b == "" || b == "fswal"
}

func hullVertices(t *testing.T, ts *httptest.Server, id string) ([]any, float64) {
	t.Helper()
	code, hull := do(t, "GET", ts.URL+"/v1/streams/"+id+"/hull", nil)
	if code != http.StatusOK {
		t.Fatalf("hull %q: %d %v", id, code, hull)
	}
	return hull["vertices"].([]any), hull["n"].(float64)
}

func sameVertices(t *testing.T, got, want []any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("hull has %d vertices, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i].([]any), want[i].([]any)
		if g[0] != w[0] || g[1] != w[1] {
			t.Fatalf("vertex %d = %v, want %v", i, g, w)
		}
	}
}

// TestDurableRecoveryAfterKill simulates an unclean kill: the first
// server is abandoned without Close (its WAL fsyncs never ran — the
// SyncNone policy plus no Close means recovery sees exactly what the
// write syscalls left behind) and a second server must rebuild every
// stream with an identical hull.
func TestDurableRecoveryAfterKill(t *testing.T) {
	dir := t.TempDir()
	srvA := mustNew(t, durableConfig(dir))
	tsA := httptest.NewServer(srvA)

	if code, _ := do(t, "PUT", tsA.URL+"/v1/streams/d1?algo=adaptive&r=16", nil); code != http.StatusCreated {
		t.Fatal("create d1")
	}
	if code, _ := do(t, "PUT", tsA.URL+"/v1/streams/u1?algo=uniform&r=12", nil); code != http.StatusCreated {
		t.Fatal("create u1")
	}
	if code, _ := do(t, "PUT", tsA.URL+"/v1/streams/ex1?algo=exact", nil); code != http.StatusCreated {
		t.Fatal("create ex1")
	}
	if code, _ := do(t, "PUT", tsA.URL+"/v1/streams/w1?window=100&r=8", nil); code != http.StatusCreated {
		t.Fatal("create w1")
	}
	pts := workload.Take(workload.Ellipse(7, 1, 0.3, 0.4), 3000)
	for _, id := range []string{"d1", "u1", "ex1", "w1"} {
		for i := 0; i < len(pts); i += 500 {
			ingest(t, tsA, id, pts[i:i+500])
		}
	}
	ingest(t, tsA, "auto1", pts[:1000]) // auto-created durable stream

	wantHulls := map[string][]any{}
	for _, id := range []string{"d1", "u1", "ex1", "w1", "auto1"} {
		vs, _ := hullVertices(t, tsA, id)
		wantHulls[id] = vs
	}
	tsA.Close() // the listener dies; srvA.Close() deliberately never runs

	srvB := mustNew(t, durableConfig(dir))
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()

	wantN := map[string]float64{"d1": 3000, "u1": 3000, "ex1": 3000, "w1": 3000, "auto1": 1000}
	for id, want := range wantHulls {
		got, n := hullVertices(t, tsB, id)
		if n != wantN[id] {
			t.Fatalf("stream %q recovered n = %v, want %v", id, n, wantN[id])
		}
		sameVertices(t, got, want)
	}
	// The recovered windowed stream keeps its spec and window coverage,
	// not just its hull.
	code, detail := do(t, "GET", tsB.URL+"/v1/streams/w1", nil)
	if code != http.StatusOK {
		t.Fatalf("windowed detail after recovery: %d %v", code, detail)
	}
	if detail["window"] != "100" {
		t.Fatalf("recovered windowed stream lost its window: %v", detail)
	}
	if wc := detail["window_count"].(float64); wc < 100 || wc > 300 {
		t.Fatalf("recovered window_count = %v, want near 100", wc)
	}
}

// TestDurableWindowedKillRecover is the windowed half of the
// durability story: a count-windowed stream is driven through several
// windowed-state checkpoints (which compact the WAL), the server dies
// without Close — the kill -9 shape — and a second server must rebuild
// the window bit-exactly: same hull vertices, same live coverage, same
// spec.
func TestDurableWindowedKillRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointEvery = 500
	srvA := mustNew(t, cfg)
	tsA := httptest.NewServer(srvA)

	code, resp := do(t, "PUT", tsA.URL+"/v1/streams/wd",
		map[string]any{"kind": "windowed", "r": 8, "window": "300"})
	if code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, resp)
	}
	// A drifting stream: the window must forget the early positions, and
	// the checkpointed bucket structure is what keeps expiry exact.
	pts := workload.Take(workload.DriftBurst(23, 1, geom.Pt(0.01, 0), 800, 100, 5), 2600)
	for i := 0; i < len(pts); i += 200 {
		ingest(t, tsA, "wd", pts[i:i+200])
	}
	wantVs, wantN := hullVertices(t, tsA, "wd")
	_, wantDetail := do(t, "GET", tsA.URL+"/v1/streams/wd", nil)
	tsA.Close() // srvA.Close() deliberately never runs

	// The windowed checkpoints must have compacted the log (layout
	// check is fswal-specific; muxwal compaction is covered in the
	// store package's own tests).
	if fswalLayout() {
		streamDir := filepath.Join(dir, "wd")
		if _, err := os.Stat(filepath.Join(streamDir, "checkpoint.snap")); err != nil {
			t.Fatalf("no windowed checkpoint written: %v", err)
		}
		entries, err := os.ReadDir(streamDir)
		if err != nil {
			t.Fatal(err)
		}
		segs := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".wal") {
				segs++
			}
		}
		if segs > 2 {
			t.Fatalf("windowed checkpointing left %d segments; compaction is not pruning", segs)
		}
	}

	srvB := mustNew(t, cfg)
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()

	gotVs, gotN := hullVertices(t, tsB, "wd")
	if gotN != wantN {
		t.Fatalf("recovered n = %v, want %v", gotN, wantN)
	}
	sameVertices(t, gotVs, wantVs)
	_, gotDetail := do(t, "GET", tsB.URL+"/v1/streams/wd", nil)
	for _, key := range []string{"window", "window_count", "sample_size", "algo", "r"} {
		if gotDetail[key] != wantDetail[key] {
			t.Errorf("detail %q: recovered %v, want %v", key, gotDetail[key], wantDetail[key])
		}
	}
	if gotDetail["durable"] != true {
		t.Error("recovered stream not marked durable")
	}
}

// TestGracefulCloseSealsCheckpoint: a clean shutdown must leave every
// checkpointable stream compacted even below CheckpointEvery — in
// particular a windowed stream's bucket state — and a restart must
// recover from it, including after a windowed snapshot restore.
func TestGracefulCloseSealsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir) // CheckpointEvery defaults to 65536, far above ingest
	srvA := mustNew(t, cfg)
	tsA := httptest.NewServer(srvA)

	if code, _ := do(t, "PUT", tsA.URL+"/v1/streams/gw",
		map[string]any{"kind": "windowed", "r": 8, "window": "200"}); code != http.StatusCreated {
		t.Fatal("create gw")
	}
	pts := workload.Take(workload.Disk(41, geom.Pt(3, 3), 1), 600)
	for i := 0; i < 600; i += 150 {
		ingest(t, tsA, "gw", pts[i:i+150])
	}
	// A windowed snapshot restored onto a new durable stream must seal a
	// windowed-state checkpoint, not a snapshot binary.
	code, snap := do(t, "GET", tsA.URL+"/v1/streams/gw/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %v", code, snap)
	}
	if code, resp := do(t, "POST", tsA.URL+"/v1/streams/gw2/snapshot", snap); code != http.StatusCreated {
		t.Fatalf("windowed snapshot restore: %d %v", code, resp)
	}
	wantVs, wantN := hullVertices(t, tsA, "gw")
	tsA.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}
	if fswalLayout() {
		for _, id := range []string{"gw", "gw2"} {
			if _, err := os.Stat(filepath.Join(dir, id, "checkpoint.snap")); err != nil {
				t.Fatalf("stream %q: no checkpoint after graceful close: %v", id, err)
			}
		}
	}

	srvB := mustNew(t, cfg)
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	gotVs, gotN := hullVertices(t, tsB, "gw")
	if gotN != wantN {
		t.Fatalf("recovered n = %v, want %v", gotN, wantN)
	}
	sameVertices(t, gotVs, wantVs)
	if code, _ := do(t, "GET", tsB.URL+"/v1/streams/gw2/hull", nil); code != http.StatusOK {
		t.Fatal("restored windowed stream did not survive restart")
	}
}

// TestDurableCheckpointExactRecovery drives enough points through a
// small CheckpointEvery that the log is compacted several times, then
// checks a restart reproduces the served hull bit-for-bit (checkpoints
// re-base the live summary, so recovery replays the same state).
func TestDurableCheckpointExactRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointEvery = 200
	srvA := mustNew(t, cfg)
	tsA := httptest.NewServer(srvA)

	pts := workload.Take(workload.ChangingEllipse(9, 1100, 0.2), 1100)
	for i := 0; i < 1000; i += 100 {
		ingest(t, tsA, "ck", pts[i:i+100])
	}
	ingest(t, tsA, "ck", pts[1000:1100]) // tail after the last checkpoint
	wantVs, wantN := hullVertices(t, tsA, "ck")
	tsA.Close()

	// Compaction must have pruned the pre-checkpoint segments (fswal
	// layout; muxwal compaction has its own store-package tests).
	if fswalLayout() {
		streamDir := filepath.Join(dir, "ck")
		if _, err := os.Stat(filepath.Join(streamDir, "checkpoint.snap")); err != nil {
			t.Fatalf("no checkpoint written: %v", err)
		}
		entries, err := os.ReadDir(streamDir)
		if err != nil {
			t.Fatal(err)
		}
		segs := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".wal") {
				segs++
			}
		}
		if segs > 2 {
			t.Fatalf("checkpointing left %d segments; compaction is not pruning", segs)
		}
	}

	srvB := mustNew(t, cfg)
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	gotVs, gotN := hullVertices(t, tsB, "ck")
	if gotN != wantN {
		t.Fatalf("recovered n = %v, want %v", gotN, wantN)
	}
	sameVertices(t, gotVs, wantVs)
}

// TestDurableTornTail cuts into the final WAL record — the shape a
// power loss mid-write leaves behind — and checks recovery drops
// exactly that record and matches an independent clean replay of the
// same directory.
func TestDurableTornTail(t *testing.T) {
	if !fswalLayout() {
		t.Skip("torn-tail surgery targets the fswal layout; muxwal's torn tail is covered in internal/store")
	}
	dir := t.TempDir()
	srvA := mustNew(t, durableConfig(dir))
	tsA := httptest.NewServer(srvA)
	pts := workload.Take(workload.Disk(11, geom.Pt(0, 0), 1), 500)
	for i := 0; i < 500; i += 50 {
		ingest(t, tsA, "torn", pts[i:i+50])
	}
	// Abandon without Close — the crash shape. (A graceful Close would
	// seal a final checkpoint and compact away the segments this test
	// wants to damage.)
	tsA.Close()

	streamDir := filepath.Join(dir, "torn")
	segs, err := os.ReadDir(streamDir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range segs {
		if strings.HasSuffix(e.Name(), ".wal") {
			last = filepath.Join(streamDir, e.Name())
		}
	}
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	// Clean replay of the damaged directory, straight through the wal
	// package — the reference answer recovery must match.
	rec, err := wal.StartRecovery(streamDir)
	if err != nil {
		t.Fatal(err)
	}
	ref := streamhull.NewAdaptive(16)
	info, err := rec.Replay(func(batch []geom.Point) error {
		// Batch-at-a-time, as the server both ingests and recovers.
		_, err := ref.InsertBatch(batch)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn {
		t.Fatal("truncation did not register as a torn tail")
	}

	srvB := mustNew(t, durableConfig(dir))
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	gotVs, gotN := hullVertices(t, tsB, "torn")
	if gotN != 450 {
		t.Fatalf("recovered n = %v, want 450 (final 50-point record torn)", gotN)
	}
	refVs := ref.Hull().Vertices()
	if len(gotVs) != len(refVs) {
		t.Fatalf("recovered hull has %d vertices, clean replay has %d", len(gotVs), len(refVs))
	}
	for i, v := range refVs {
		g := gotVs[i].([]any)
		if g[0].(float64) != v.X || g[1].(float64) != v.Y {
			t.Fatalf("vertex %d = %v, clean replay %v", i, g, v)
		}
	}
}

func TestDurableDeleteRemovesStorage(t *testing.T) {
	dir := t.TempDir()
	srv := mustNew(t, durableConfig(dir))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ingest(t, ts, "gone", workload.Take(workload.Disk(1, geom.Point{}, 1), 100))
	if fswalLayout() {
		if _, err := os.Stat(filepath.Join(dir, "gone")); err != nil {
			t.Fatalf("stream dir missing before delete: %v", err)
		}
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/streams/gone", nil); code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if fswalLayout() {
		if _, err := os.Stat(filepath.Join(dir, "gone")); !os.IsNotExist(err) {
			t.Fatalf("stream dir still present after delete: %v", err)
		}
	}
	srv2 := mustNew(t, durableConfig(dir))
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if code, _ := do(t, "GET", ts2.URL+"/v1/streams/gone/hull", nil); code != http.StatusNotFound {
		t.Fatalf("deleted stream resurrected: %d", code)
	}
}

// TestSnapshotContentNegotiation covers both halves: GET with
// Accept: application/octet-stream serves the binary encoding, and
// POST restores from either encoding.
func TestSnapshotContentNegotiation(t *testing.T) {
	ts := newTestServer(t)
	ingest(t, ts, "src", workload.Take(workload.Gaussian(5, geom.Point{}, 1), 4000))

	req, _ := http.NewRequest("GET", ts.URL+"/v1/streams/src/snapshot", nil)
	req.Header.Set("Accept", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bin, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary snapshot: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	var snap streamhull.Snapshot
	if err := snap.UnmarshalBinary(bin); err != nil {
		t.Fatalf("served binary does not decode: %v", err)
	}
	if snap.Kind != "adaptive" || snap.N != 4000 {
		t.Fatalf("snapshot = kind %q n %d", snap.Kind, snap.N)
	}

	// Binary restore.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/streams/copy/snapshot", bytes.NewReader(bin))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("binary restore: %d", resp.StatusCode)
	}
	_, n := hullVertices(t, ts, "copy")
	if n != 4000 {
		t.Fatalf("restored stream n = %v, want 4000", n)
	}

	// JSON restore of the JSON snapshot.
	code, jsnap := do(t, "GET", ts.URL+"/v1/streams/src/snapshot", nil)
	if code != http.StatusOK {
		t.Fatal("json snapshot")
	}
	code, _ = do(t, "POST", ts.URL+"/v1/streams/copy2/snapshot", jsnap)
	if code != http.StatusCreated {
		t.Fatalf("json restore: %d", code)
	}
	// Restoring onto an existing stream conflicts.
	code, _ = do(t, "POST", ts.URL+"/v1/streams/copy/snapshot", jsnap)
	if code != http.StatusConflict {
		t.Fatalf("duplicate restore: %d", code)
	}
	// Garbage binary is rejected.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/streams/bad/snapshot", strings.NewReader("not a snapshot"))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore: %d", resp.StatusCode)
	}
}

// TestBatchAtomicOnBadInput: a rejected batch must leave the stream
// untouched — the whole batch is validated before any insert.
func TestBatchAtomicOnBadInput(t *testing.T) {
	ts := newTestServer(t)
	ingest(t, ts, "atomic", workload.Take(workload.Disk(2, geom.Point{}, 1), 10))
	// 1e999 overflows float64, so decoding fails after the first valid
	// point; nothing may be applied.
	body := `{"points":[[1,2],[3,4],[1e999,0]]}`
	resp, err := http.Post(ts.URL+"/v1/streams/atomic/points", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: %d, want 400", resp.StatusCode)
	}
	if _, n := hullVertices(t, ts, "atomic"); n != 10 {
		t.Fatalf("rejected batch mutated the stream: n = %v, want 10", n)
	}
}

func TestStreamDirEncoding(t *testing.T) {
	for _, id := range []string{"plain", "a/b", "..", ".hidden", "hé%llo", "sp ace", "%41"} {
		name := encodeStreamDir(id)
		if strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
			t.Fatalf("encode(%q) = %q is not filesystem-safe", id, name)
		}
		back, ok := decodeStreamDir(name)
		if !ok || back != id {
			t.Fatalf("decode(encode(%q)) = %q, %v", id, back, ok)
		}
	}
	if _, ok := decodeStreamDir("bad%zz"); ok {
		t.Fatal("invalid escape accepted")
	}
	if _, ok := decodeStreamDir("has space"); ok {
		t.Fatal("unsafe character accepted")
	}
}
