package streamhull

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Spec is a flat, JSON-serializable description of any summary this
// package can build — the single constructor input of the v2 API. A Spec
// round-trips through JSON (ParseSpec ∘ String is the identity on valid
// specs), so it is the unit of configuration everywhere a summary
// crosses a process boundary: the HTTP server's create endpoint, WAL
// metadata (so crash recovery can rebuild any stream kind), snapshots,
// and the CLI flags, which all compile down to a Spec.
//
// Exactly the fields meaningful for the Kind may be set; Validate
// rejects conflicting combinations (a window on a partitioned summary, a
// grid on a windowed one, …) so that a Spec accepted anywhere is
// constructible everywhere.
type Spec struct {
	// Kind selects the summary algorithm.
	Kind Kind `json:"kind"`
	// R is the sample parameter: ≥ 4 for adaptive, partial, windowed and
	// partitioned summaries, ≥ 3 for uniform, and 0 for exact (which has
	// no sampling parameter).
	R int `json:"r,omitempty"`

	// HeightLimit is the adaptive refinement-tree height limit k (§5.1);
	// 0 selects the paper's recommended k = ⌊log2 r⌋. Adaptive only.
	HeightLimit int `json:"height_limit,omitempty"`
	// FixedBudget switches the adaptive summary to the fixed-budget
	// variant of §7 with this many total directions (must be ≥ R when
	// set). Adaptive and partial (the training phase) only.
	FixedBudget int `json:"fixed_budget,omitempty"`
	// BoundedWork bounds unrefinement steps per insert (§5.3 end);
	// 0 means unbounded (amortized variant). Adaptive only.
	BoundedWork int `json:"bounded_work,omitempty"`

	// TrainN is the partial summary's training-prefix length (§7).
	// Required for (and exclusive to) partial summaries.
	TrainN int `json:"train_n,omitempty"`

	// Window is the sliding-window bound: a point count like "5000" or a
	// Go duration like "30s". Required for (and exclusive to) windowed
	// summaries.
	Window string `json:"window,omitempty"`

	// Grid is the spatial partition of the plane. Required for (and
	// exclusive to) partitioned summaries.
	Grid *GridSpec `json:"grid,omitempty"`

	// Shards is the parallel-ingest fan-out: the stream is dealt
	// round-robin across this many independent sub-summaries, each with
	// its own lock, and reads merge the shard hulls. Required for (and
	// exclusive to) sharded summaries.
	Shards int `json:"shards,omitempty"`
	// Inner describes each shard's sub-summary. Required for (and
	// exclusive to) sharded summaries; the inner kind must be adaptive,
	// uniform, or exact (the mergeable lifetime kinds).
	Inner *Spec `json:"inner,omitempty"`
}

// Kind names a summary algorithm.
type Kind string

// The eight summary kinds.
const (
	KindAdaptive    Kind = "adaptive"    // §4–§5 adaptive sampling, the flagship
	KindUniform     Kind = "uniform"     // §3 uniformly sampled baseline
	KindExact       Kind = "exact"       // exact hull, Θ(hull size) storage
	KindPartial     Kind = "partial"     // §7 train-then-freeze comparator
	KindWindowed    Kind = "windowed"    // sliding-window EH of adaptive buckets
	KindPartitioned Kind = "partitioned" // §8 per-region adaptive hulls
	KindSharded     Kind = "sharded"     // round-robin fan-out over mergeable sub-summaries
	KindFanIn       Kind = "fanin"       // multi-node aggregate fed by source-tagged snapshot pushes
)

// Kinds lists every valid summary kind.
func Kinds() []Kind {
	return []Kind{KindAdaptive, KindUniform, KindExact, KindPartial, KindWindowed, KindPartitioned, KindSharded, KindFanIn}
}

// GridSpec is a uniform cols×rows partition of the rectangle
// [MinX,MaxX]×[MinY,MaxY]; points outside clamp to the nearest cell
// (see GridRegions).
type GridSpec struct {
	Cols int     `json:"cols"`
	Rows int     `json:"rows"`
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Resource caps: Validate == nil means New is safe to call on
// untrusted input (the HTTP server does), so a spec cannot demand an
// absurd allocation.
const (
	// MaxR is the largest accepted sample parameter. The paper's r is
	// tens to hundreds; 2²⁰ directions is already far past any accuracy
	// a float64 hull can express.
	MaxR = 1 << 20
	// MaxGridCells is the largest accepted cols×rows product for a
	// partitioned summary (each cell owns an O(r) adaptive summary).
	MaxGridCells = 1 << 16
	// MaxShards is the largest accepted fan-out for a sharded summary
	// (each shard owns an O(r) sub-summary and its own lock; far past
	// any core count, lock contention is long gone).
	MaxShards = 1 << 10
)

func (g *GridSpec) validate() error {
	if g.Cols < 1 || g.Rows < 1 {
		return fmt.Errorf("streamhull: grid must have ≥ 1 column and row, got %d×%d", g.Cols, g.Rows)
	}
	// Overflow-safe product check (Cols*Rows can wrap on 32-bit ints).
	if g.Cols > MaxGridCells || g.Rows > MaxGridCells/g.Cols {
		return fmt.Errorf("streamhull: grid %d×%d exceeds %d cells", g.Cols, g.Rows, MaxGridCells)
	}
	for _, v := range []float64{g.MinX, g.MinY, g.MaxX, g.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("streamhull: grid bounds must be finite")
		}
	}
	if g.MaxX <= g.MinX || g.MaxY <= g.MinY {
		return fmt.Errorf("streamhull: grid rectangle [%g,%g]×[%g,%g] is empty",
			g.MinX, g.MaxX, g.MinY, g.MaxY)
	}
	return nil
}

// parseWindow interprets a window spec string: a point count like "5000"
// (count > 0, duration 0) or a Go duration like "30s" (count 0,
// duration > 0).
func parseWindow(spec string) (count int, dur time.Duration, err error) {
	if n, aerr := strconv.Atoi(spec); aerr == nil {
		if n < 1 {
			return 0, 0, fmt.Errorf("streamhull: window count must be ≥ 1, got %d", n)
		}
		return n, 0, nil
	}
	d, derr := time.ParseDuration(spec)
	if derr != nil {
		return 0, 0, fmt.Errorf("streamhull: window %q is neither a point count nor a duration", spec)
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("streamhull: window duration must be positive, got %v", d)
	}
	return 0, d, nil
}

// Validate reports whether the Spec describes a constructible summary.
// It never panics; every field combination New would reject is caught
// here, so Validate == nil implies New succeeds.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindAdaptive, KindUniform, KindExact, KindPartial, KindWindowed, KindPartitioned, KindSharded, KindFanIn:
	case "":
		return fmt.Errorf("streamhull: spec has no kind")
	default:
		return fmt.Errorf("streamhull: unknown summary kind %q", s.Kind)
	}

	// Sample parameter per kind. A fan-in aggregate's r sizes its
	// adaptive merge, so it obeys the adaptive minimum.
	switch s.Kind {
	case KindAdaptive, KindPartial, KindWindowed, KindPartitioned, KindFanIn:
		if s.R < 4 {
			return fmt.Errorf("streamhull: %s summary requires r ≥ 4, got %d", s.Kind, s.R)
		}
	case KindUniform:
		if s.R < 3 {
			return fmt.Errorf("streamhull: uniform summary requires r ≥ 3, got %d", s.R)
		}
	case KindExact:
		if s.R != 0 {
			return fmt.Errorf("streamhull: exact summary has no sample parameter (r = %d)", s.R)
		}
	case KindSharded:
		if s.R != 0 {
			return fmt.Errorf("streamhull: sharded summary has no sample parameter of its own (r = %d belongs in the inner spec)", s.R)
		}
	}
	if s.R > MaxR {
		return fmt.Errorf("streamhull: r = %d exceeds %d", s.R, MaxR)
	}
	if s.FixedBudget > MaxR {
		return fmt.Errorf("streamhull: fixed_budget = %d exceeds %d", s.FixedBudget, MaxR)
	}

	// Kind-exclusive fields: any cross-kind combination is a conflict.
	if s.HeightLimit != 0 && s.Kind != KindAdaptive {
		return fmt.Errorf("streamhull: height_limit applies only to adaptive summaries, not %s", s.Kind)
	}
	if s.HeightLimit < 0 {
		return fmt.Errorf("streamhull: height_limit must be ≥ 0, got %d", s.HeightLimit)
	}
	if s.BoundedWork != 0 && s.Kind != KindAdaptive {
		return fmt.Errorf("streamhull: bounded_work applies only to adaptive summaries, not %s", s.Kind)
	}
	if s.BoundedWork < 0 {
		return fmt.Errorf("streamhull: bounded_work must be ≥ 0, got %d", s.BoundedWork)
	}
	if s.FixedBudget != 0 {
		if s.Kind != KindAdaptive && s.Kind != KindPartial {
			return fmt.Errorf("streamhull: fixed_budget applies only to adaptive and partial summaries, not %s", s.Kind)
		}
		if s.FixedBudget < s.R {
			return fmt.Errorf("streamhull: fixed_budget %d < r %d", s.FixedBudget, s.R)
		}
	}
	if s.TrainN != 0 && s.Kind != KindPartial {
		return fmt.Errorf("streamhull: train_n applies only to partial summaries, not %s", s.Kind)
	}
	if s.Kind == KindPartial && s.TrainN < 1 {
		return fmt.Errorf("streamhull: partial summary requires train_n ≥ 1, got %d", s.TrainN)
	}
	if s.Window != "" && s.Kind != KindWindowed {
		return fmt.Errorf("streamhull: window applies only to windowed summaries, not %s", s.Kind)
	}
	if s.Kind == KindWindowed {
		if s.Window == "" {
			return fmt.Errorf("streamhull: windowed summary requires a window (a count or a duration)")
		}
		if _, _, err := parseWindow(s.Window); err != nil {
			return err
		}
	}
	if s.Grid != nil && s.Kind != KindPartitioned {
		return fmt.Errorf("streamhull: grid applies only to partitioned summaries, not %s", s.Kind)
	}
	if s.Kind == KindPartitioned {
		if s.Grid == nil {
			return fmt.Errorf("streamhull: partitioned spec requires a grid (summaries built " +
				"with a custom RegionFunc cannot be described by a Spec)")
		}
		if err := s.Grid.validate(); err != nil {
			return err
		}
	}
	if s.Shards != 0 && s.Kind != KindSharded {
		return fmt.Errorf("streamhull: shards applies only to sharded summaries, not %s", s.Kind)
	}
	if s.Inner != nil && s.Kind != KindSharded {
		return fmt.Errorf("streamhull: inner applies only to sharded summaries, not %s", s.Kind)
	}
	if s.Kind == KindSharded {
		if s.Shards < 1 {
			return fmt.Errorf("streamhull: sharded summary requires shards ≥ 1, got %d", s.Shards)
		}
		if s.Shards > MaxShards {
			return fmt.Errorf("streamhull: shards = %d exceeds %d", s.Shards, MaxShards)
		}
		if s.Inner == nil {
			return fmt.Errorf("streamhull: sharded spec requires an inner spec for its sub-summaries")
		}
		switch s.Inner.Kind {
		case KindAdaptive, KindUniform, KindExact:
		default:
			return fmt.Errorf("streamhull: sharded inner kind must be adaptive, uniform, or exact, got %q", s.Inner.Kind)
		}
		if err := s.Inner.Validate(); err != nil {
			return fmt.Errorf("streamhull: sharded inner spec: %w", err)
		}
	}
	return nil
}

// String returns the canonical JSON encoding of the Spec. For a valid
// Spec, ParseSpec(s.String()) reproduces s exactly.
func (s Spec) String() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec has no marshal-failing field types; keep String total anyway.
		return fmt.Sprintf(`{"kind":%q}`, string(s.Kind))
	}
	return string(data)
}

// ParseSpec decodes and validates a spec JSON document. Unknown fields,
// trailing data, malformed kinds, negative parameters and conflicting
// field combinations are all errors; ParseSpec never panics.
func ParseSpec(data string) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("streamhull: decoding spec: %w", err)
	}
	// Reject trailing garbage after the spec object.
	if dec.More() {
		return Spec{}, fmt.Errorf("streamhull: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// SpecFor compiles the legacy flag triple — an algorithm name, a sample
// parameter and an optional window spec — down to a Spec. It is the
// bridge the CLIs and the server's query parameters use; algo "" means
// adaptive, and a non-empty window selects a windowed summary (whose
// buckets are always adaptive).
func SpecFor(algo string, r int, window string) (Spec, error) {
	if window != "" {
		if algo != "" && algo != string(KindAdaptive) && algo != string(KindWindowed) {
			return Spec{}, fmt.Errorf("streamhull: window requires algo adaptive, got %q", algo)
		}
		s := Spec{Kind: KindWindowed, R: r, Window: window}
		return s, s.Validate()
	}
	switch algo {
	case "", string(KindAdaptive):
		s := Spec{Kind: KindAdaptive, R: r}
		return s, s.Validate()
	case string(KindUniform):
		s := Spec{Kind: KindUniform, R: r}
		return s, s.Validate()
	case string(KindExact):
		// Exact summaries have no sample parameter; drop the default r the
		// caller's flag supplied.
		return Spec{Kind: KindExact}, nil
	case string(KindFanIn):
		s := Spec{Kind: KindFanIn, R: r}
		return s, s.Validate()
	case string(KindWindowed):
		return Spec{}, fmt.Errorf("streamhull: windowed summary requires a window (a count or a duration)")
	default:
		return Spec{}, fmt.Errorf("streamhull: unknown algo %q (want adaptive, uniform, exact, or fanin)", algo)
	}
}

// New builds the summary a Spec describes — the one constructor of the
// v2 API. Every summary it returns reports the same Spec back through
// its Spec method, so a running stream is self-describing: persist the
// Spec (the WAL does), and New(spec) rebuilds a summary the stream's
// log can be replayed into.
func New(spec Spec) (Summary, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindAdaptive:
		return buildAdaptive(spec), nil
	case KindUniform:
		return buildUniform(spec), nil
	case KindExact:
		return buildExact(), nil
	case KindPartial:
		return buildPartial(spec), nil
	case KindWindowed:
		return buildWindowed(spec, nil)
	case KindPartitioned:
		return buildPartitioned(spec), nil
	case KindSharded:
		return buildSharded(spec)
	case KindFanIn:
		return buildFanIn(spec), nil
	default:
		// Unreachable after Validate.
		return nil, fmt.Errorf("streamhull: unknown summary kind %q", spec.Kind)
	}
}

// equalSpec reports whether two specs describe the same summary
// (comparing Grid and Inner by value, not pointer).
func equalSpec(a, b Spec) bool {
	ga, gb := a.Grid, b.Grid
	ia, ib := a.Inner, b.Inner
	a.Grid, b.Grid = nil, nil
	a.Inner, b.Inner = nil, nil
	if a != b {
		return false
	}
	if (ga == nil) != (gb == nil) || (ia == nil) != (ib == nil) {
		return false
	}
	if ga != nil && *ga != *gb {
		return false
	}
	return ia == nil || equalSpec(*ia, *ib)
}

// specJSONPrefix reports whether data plausibly starts a JSON object —
// used to tell spec/state payloads apart from binary snapshot payloads.
func specJSONPrefix(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{'
}
