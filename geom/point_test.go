package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); !got.Eq(Pt(2, 6)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(4, 2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(6, 8)) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Neg(); !got.Eq(Pt(-3, -4)) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Dot(q); got != -3+8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 3*2-4*(-1) {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Hypot(4, 2), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	if got := p.Rot90(); !got.Eq(Pt(-4, 3)) {
		t.Errorf("Rot90 = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, -4)
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp 1 = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if !almostEq(mid.X, 5, 1e-12) || !almostEq(mid.Y, -2, 1e-12) {
		t.Errorf("Lerp 0.5 = %v", mid)
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	err := quick.Check(func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		// Keep magnitudes sane so relative tolerance applies.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		theta = math.Mod(theta, 100)
		p := Pt(x, y)
		q := p.Rotate(theta)
		return almostEq(p.Norm(), q.Norm(), 1e-6*(1+p.Norm()))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRotateComposition(t *testing.T) {
	p := Pt(1, 0)
	q := p.Rotate(math.Pi / 6).Rotate(math.Pi / 3)
	if !almostEq(q.X, 0, 1e-12) || !almostEq(q.Y, 1, 1e-12) {
		t.Errorf("Rotate composition = %v", q)
	}
}

func TestUnit(t *testing.T) {
	for i := 0; i < 64; i++ {
		theta := float64(i) * TwoPi / 64
		u := Unit(theta)
		if !almostEq(u.Norm(), 1, 1e-12) {
			t.Fatalf("Unit(%v) not unit: %v", theta, u)
		}
		if !almostEq(NormalizeAngle(u.Angle()), theta, 1e-9) && i != 32 {
			t.Fatalf("Unit(%v).Angle() = %v", theta, u.Angle())
		}
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); !got.Eq(Pt(0, 0)) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	bad := []Point{
		Pt(math.NaN(), 0), Pt(0, math.NaN()),
		Pt(math.Inf(1), 0), Pt(0, math.Inf(-1)),
	}
	for _, p := range bad {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestString(t *testing.T) {
	if got := Pt(1.5, -2).String(); got != "(1.5, -2)" {
		t.Errorf("String = %q", got)
	}
}
