package geom

import "math"

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// NormalizeAngle maps an angle to the canonical range [0, 2π). NaN and ±Inf
// are returned unchanged so that callers can detect them.
func NormalizeAngle(theta float64) float64 {
	if math.IsNaN(theta) || math.IsInf(theta, 0) {
		return theta
	}
	theta = math.Mod(theta, TwoPi)
	if theta < 0 {
		theta += TwoPi
	}
	// Mod can return exactly 2π for inputs just below a multiple of 2π.
	if theta >= TwoPi {
		theta = 0
	}
	return theta
}

// AngleDist returns the absolute angular distance between two angles,
// in [0, π].
func AngleDist(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = TwoPi - d
	}
	return d
}

// CCWGap returns the counterclockwise angular distance from a to b,
// in [0, 2π).
func CCWGap(a, b float64) float64 {
	return NormalizeAngle(b - a)
}

// AngleInCCWRange reports whether theta lies in the counterclockwise open
// interval (lo, hi). The interval may wrap around 2π; if lo == hi the
// interval is empty.
func AngleInCCWRange(theta, lo, hi float64) bool {
	g := CCWGap(lo, hi)
	t := CCWGap(lo, theta)
	return t > 0 && t < g
}
