// Package geom provides the small planar geometry kernel used by the
// streamhull summaries: points, vectors, directions on the unit circle,
// segments and lines, together with the handful of predicates the sampling
// algorithms rely on.
//
// All coordinates are float64. Exactness, where combinatorial decisions
// require it, is supplied by the internal robust-predicate package; the
// types here are deliberately plain value types with no hidden state.
package geom

import (
	"fmt"
	"math"
)

// Point is a point (or a vector, by context) in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q, treating q as a displacement vector.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns the point scaled by s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Neg returns the reflection of p through the origin.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Dot returns the dot product p·q of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q. It is positive
// when q is counterclockwise of p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 { return p.Sub(q).Norm2() }

// Angle returns the polar angle of p viewed as a vector, in (−π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Rot90 returns p rotated by +90° (counterclockwise) about the origin.
func (p Point) Rot90() Point { return Point{-p.Y, p.X} }

// Rotate returns p rotated counterclockwise about the origin by the given
// angle in radians.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// Lerp returns the point (1−t)·p + t·q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Eq reports whether p and q have identical coordinates.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// IsFinite reports whether both coordinates are finite (neither NaN nor ±Inf).
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Unit returns the direction unit vector at the given angle in radians.
func Unit(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c, s}
}

// Centroid returns the arithmetic mean of the points. It returns the origin
// for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}
