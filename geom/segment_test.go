package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 0))
	if got := s.Length(); got != 4 {
		t.Errorf("Length = %v", got)
	}
	if got := s.Midpoint(); !got.Eq(Pt(2, 0)) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},
		{Pt(-3, 4), 5},
		{Pt(13, -4), 5},
		{Pt(0, 0), 0},
		{Pt(10, 0), 0},
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if got := d.DistToPoint(Pt(4, 5)); !almostEq(got, 5, 1e-12) {
		t.Errorf("degenerate DistToPoint = %v", got)
	}
}

func TestClosestPointIsOnSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := Seg(Pt(rng.NormFloat64(), rng.NormFloat64()), Pt(rng.NormFloat64(), rng.NormFloat64()))
		p := Pt(rng.NormFloat64()*3, rng.NormFloat64()*3)
		c := s.ClosestPoint(p)
		// c must achieve the reported distance.
		if !almostEq(p.Dist(c), s.DistToPoint(p), 1e-9) {
			t.Fatalf("closest point %v does not achieve distance", c)
		}
		// c must be within the segment's bounding box (with slack).
		if c.X < math.Min(s.A.X, s.B.X)-1e-9 || c.X > math.Max(s.A.X, s.B.X)+1e-9 {
			t.Fatalf("closest point %v off segment %v", c, s)
		}
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true},
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 2), Pt(3, 3)), false},
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(1, 1), Pt(3, 3)), true}, // collinear overlap
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 5)), true}, // shared endpoint
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0.5, 1), Pt(0.5, 2)), false},
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0.5, 0), Pt(0.5, 1)), true}, // T junction
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentDist2(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(1, 0))
	u := Seg(Pt(0, 2), Pt(1, 2))
	if got := s.Dist2(u); !almostEq(got, 4, 1e-12) {
		t.Errorf("parallel Dist2 = %v", got)
	}
	v := Seg(Pt(0.5, -1), Pt(0.5, 1))
	if got := s.Dist2(v); got != 0 {
		t.Errorf("crossing Dist2 = %v", got)
	}
}

func TestSupportingLine(t *testing.T) {
	p := Pt(3, 0)
	l := SupportingLine(p, 0) // outward normal +x
	if !almostEq(l.Side(Pt(5, 2)), 2, 1e-12) {
		t.Errorf("Side = %v", l.Side(Pt(5, 2)))
	}
	if !almostEq(l.Side(p), 0, 1e-12) {
		t.Errorf("point not on its supporting line: %v", l.Side(p))
	}
}

func TestLineIntersect(t *testing.T) {
	l := SupportingLine(Pt(1, 0), 0)         // x = 1
	m := SupportingLine(Pt(0, 2), math.Pi/2) // y = 2
	p, ok := l.Intersect(m)
	if !ok {
		t.Fatal("expected intersection")
	}
	if !almostEq(p.X, 1, 1e-12) || !almostEq(p.Y, 2, 1e-12) {
		t.Errorf("Intersect = %v", p)
	}
	// Parallel lines.
	n := SupportingLine(Pt(5, 0), 0)
	if _, ok := l.Intersect(n); ok {
		t.Error("parallel lines reported as intersecting")
	}
}
