package geom

import "math"

// Segment is the closed line segment between two points.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// DistToPoint returns the distance from p to the closest point of the
// segment.
func (s Segment) DistToPoint(p Point) float64 {
	return math.Sqrt(s.Dist2ToPoint(p))
}

// Dist2ToPoint returns the squared distance from p to the closest point of
// the segment.
func (s Segment) Dist2ToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	denom := ab.Norm2()
	if denom == 0 {
		return ap.Norm2()
	}
	t := ap.Dot(ab) / denom
	if t <= 0 {
		return ap.Norm2()
	}
	if t >= 1 {
		return p.Dist2(s.B)
	}
	return p.Dist2(s.A.Lerp(s.B, t))
}

// ClosestPoint returns the point of the segment nearest to p.
func (s Segment) ClosestPoint(p Point) Point {
	ab := s.B.Sub(s.A)
	denom := ab.Norm2()
	if denom == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(ab) / denom
	if t <= 0 {
		return s.A
	}
	if t >= 1 {
		return s.B
	}
	return s.A.Lerp(s.B, t)
}

// Dist2 returns the squared distance between the closest points of two
// segments. Intersecting segments have distance zero.
func (s Segment) Dist2(t Segment) float64 {
	if s.Intersects(t) {
		return 0
	}
	d := s.Dist2ToPoint(t.A)
	if v := s.Dist2ToPoint(t.B); v < d {
		d = v
	}
	if v := t.Dist2ToPoint(s.A); v < d {
		d = v
	}
	if v := t.Dist2ToPoint(s.B); v < d {
		d = v
	}
	return d
}

// Intersects reports whether the two closed segments share at least one
// point. The test uses orientation signs and therefore handles collinear
// overlap.
func (s Segment) Intersects(t Segment) bool {
	d1 := orientSign(t.A, t.B, s.A)
	d2 := orientSign(t.A, t.B, s.B)
	d3 := orientSign(s.A, s.B, t.A)
	d4 := orientSign(s.A, s.B, t.B)
	if d1*d2 < 0 && d3*d4 < 0 {
		return true
	}
	if d1 == 0 && onSegment(t.A, t.B, s.A) {
		return true
	}
	if d2 == 0 && onSegment(t.A, t.B, s.B) {
		return true
	}
	if d3 == 0 && onSegment(s.A, s.B, t.A) {
		return true
	}
	if d4 == 0 && onSegment(s.A, s.B, t.B) {
		return true
	}
	return false
}

// orientSign returns the sign of the orientation test (a, b, c): +1 for a
// left turn, −1 for a right turn, 0 for collinear. Plain floating point is
// sufficient for the segment routines, which are used only on measured data;
// the summaries themselves use internal/robust.
func orientSign(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether c, known to be collinear with a and b, lies on
// the closed segment ab.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// Line is the infinite oriented line through a point with a given outward
// unit normal: {x : x·N = Offset} with the "outside" being x·N > Offset.
type Line struct {
	N      Point   // unit normal
	Offset float64 // signed offset along N
}

// SupportingLine returns the line through p with outward normal at angle
// theta, as used for uncertainty-triangle constructions.
func SupportingLine(p Point, theta float64) Line {
	n := Unit(theta)
	return Line{N: n, Offset: n.Dot(p)}
}

// Side returns the signed distance from p to the line (positive outside).
func (l Line) Side(p Point) float64 { return l.N.Dot(p) - l.Offset }

// Intersect returns the intersection point of two lines and reports whether
// it exists (the lines are not parallel).
func (l Line) Intersect(m Line) (Point, bool) {
	det := l.N.Cross(m.N)
	if det == 0 {
		return Point{}, false
	}
	// Solve l.N·x = l.Offset, m.N·x = m.Offset by Cramer's rule.
	x := (l.Offset*m.N.Y - m.Offset*l.N.Y) / det
	y := (l.N.X*m.Offset - m.N.X*l.Offset) / det
	return Point{x, y}, true
}
