package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{TwoPi, 0},
		{-TwoPi, 0},
		{math.Pi, math.Pi},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * TwoPi, 0},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want, 1e-9) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(NormalizeAngle(math.NaN())) {
		t.Error("NaN not propagated")
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	err := quick.Check(func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		got := NormalizeAngle(theta)
		return got >= 0 && got < TwoPi
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAngleDist(t *testing.T) {
	if got := AngleDist(0.1, TwoPi-0.1); !almostEq(got, 0.2, 1e-9) {
		t.Errorf("AngleDist wrap = %v", got)
	}
	if got := AngleDist(1, 2); !almostEq(got, 1, 1e-12) {
		t.Errorf("AngleDist = %v", got)
	}
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		d := AngleDist(a, b)
		return d >= 0 && d <= math.Pi+1e-9 && almostEq(d, AngleDist(b, a), 1e-9)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCCWGap(t *testing.T) {
	if got := CCWGap(3*math.Pi/2, math.Pi/2); !almostEq(got, math.Pi, 1e-9) {
		t.Errorf("CCWGap = %v", got)
	}
	if got := CCWGap(1, 1); got != 0 {
		t.Errorf("CCWGap same = %v", got)
	}
}

func TestAngleInCCWRange(t *testing.T) {
	// Range wrapping through zero.
	if !AngleInCCWRange(0.1, TwoPi-0.5, 0.5) {
		t.Error("0.1 should be in (2π−0.5, 0.5)")
	}
	if AngleInCCWRange(1.0, TwoPi-0.5, 0.5) {
		t.Error("1.0 should not be in (2π−0.5, 0.5)")
	}
	// Open interval: endpoints excluded.
	if AngleInCCWRange(1, 1, 2) {
		t.Error("lo endpoint should be excluded")
	}
	if AngleInCCWRange(2, 1, 2) {
		t.Error("hi endpoint should be excluded")
	}
	// Empty interval.
	if AngleInCCWRange(1.5, 1, 1) {
		t.Error("empty interval should contain nothing")
	}
}
