package streamhull

import (
	"fmt"
	"sync/atomic"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/shard"
)

// ShardedHull fans one logical stream out over S independent
// sub-summaries for parallel ingest. Each InsertBatch is dealt
// round-robin to one shard (see internal/shard), so concurrent callers
// land on different shard locks and proceed in parallel instead of
// serializing on a single summary mutex; reads merge the shard hulls.
//
// Correctness rests on mergeability: every stream point lands in
// exactly one shard, each shard's sample hull is an inner approximation
// of its own subset with the inner kind's error bound, and the hull of
// the union of shard samples therefore approximates the whole stream's
// hull with error bounded by the worst shard's — the same aggregation
// argument as MergeSnapshots, but maintained continuously. Sharding
// trades a constant-factor error increase (each shard sees ~1/S of the
// stream, so per-shard diameters can differ from the global one) for
// S-way ingest parallelism.
//
// Assignment is deterministic under serialized ingest — batch k goes to
// shard k mod S — which is what write-ahead-log recovery replays, so a
// recovered sharded stream is bit-identical to the served one.
type ShardedHull struct {
	spec   Spec
	shards []Summary
	rr     *shard.RoundRobin
	n      atomic.Int64
	epoch  atomic.Uint64
}

// buildSharded constructs a sharded summary from an already validated
// Spec (see New).
func buildSharded(spec Spec) (*ShardedHull, error) {
	subs := make([]Summary, spec.Shards)
	for i := range subs {
		sub, err := New(*spec.Inner)
		if err != nil {
			// Unreachable after Validate (which validates Inner too).
			return nil, err
		}
		subs[i] = sub
	}
	return &ShardedHull{spec: spec, shards: subs, rr: shard.NewRoundRobin(spec.Shards)}, nil
}

// NewSharded returns a summary fanning ingest out over shards
// sub-summaries described by inner (adaptive, uniform, or exact). It is
// a thin wrapper over New(Spec).
func NewSharded(shards int, inner Spec) (*ShardedHull, error) {
	s, err := New(Spec{Kind: KindSharded, Shards: shards, Inner: &inner})
	if err != nil {
		return nil, err
	}
	return s.(*ShardedHull), nil
}

// Spec returns the summary's serializable description.
func (s *ShardedHull) Spec() Spec { return s.spec }

// Shards returns the fan-out width.
func (s *ShardedHull) Shards() int { return len(s.shards) }

// ShardN returns the number of stream points dealt to shard i.
func (s *ShardedHull) ShardN(i int) int { return s.shards[i].N() }

// Insert deals one point to the next shard in rotation.
//
//lint:allow epochbump inner summaries validate before mutating, so the error return leaves every shard untouched
func (s *ShardedHull) Insert(p geom.Point) error {
	if err := checkFinite(p); err != nil {
		return err
	}
	if err := s.shards[s.rr.Next()].Insert(p); err != nil {
		return err
	}
	s.n.Add(1)
	s.epoch.Add(1)
	return nil
}

// InsertBatch deals the whole batch to the next shard in rotation: the
// batch is validated first (an error means nothing was applied and the
// rotation did not advance), then the shard ingests it under its own
// lock through the inner kind's prefiltered batch path. Concurrent
// InsertBatch calls rotate onto different shards, so up to S batches
// ingest in parallel.
//
//lint:allow epochbump the batch is validated before the shard call, so the error return leaves every shard untouched
func (s *ShardedHull) InsertBatch(pts []geom.Point) (int, error) {
	if err := checkFiniteBatch(pts); err != nil {
		return 0, err
	}
	if len(pts) == 0 {
		return 0, nil
	}
	if _, err := s.shards[s.rr.Next()].InsertBatch(pts); err != nil {
		// Unreachable: the batch was validated above and inner kinds have
		// no other failure modes.
		return 0, err
	}
	s.n.Add(int64(len(pts)))
	s.epoch.Add(1)
	return len(pts), nil
}

// Hull returns the hull of the union of all shards: the exact hull of
// the per-shard sample points, within the inner kind's error bound of
// the whole stream's hull.
func (s *ShardedHull) Hull() Polygon {
	var pts []geom.Point
	for _, sub := range s.shards {
		if sub.N() == 0 {
			continue
		}
		pts = append(pts, sub.Hull().Vertices()...)
	}
	return HullOf(pts)
}

// SampleSize returns the total number of points stored across shards.
func (s *ShardedHull) SampleSize() int {
	total := 0
	for _, sub := range s.shards {
		total += sub.SampleSize()
	}
	return total
}

// N returns the number of stream points processed.
func (s *ShardedHull) N() int { return int(s.n.Load()) }

// Epoch returns the summary's mutation counter.
func (s *ShardedHull) Epoch() uint64 { return s.epoch.Load() }

// Snapshot captures the union of the shard samples for transmission.
// Shards whose inner kind records sample directions (adaptive, uniform)
// contribute their direction/extremum pairs; exact shards contribute
// their hull vertices with zero angles (the angle column is advisory —
// NewShardedFromSnapshot restores from the points alone).
func (s *ShardedHull) Snapshot() Snapshot {
	spec := s.spec
	snap := Snapshot{Kind: string(KindSharded), R: spec.Inner.R, N: s.N(), Spec: &spec}
	for _, sub := range s.shards {
		if sub.N() == 0 {
			continue
		}
		if sn, ok := sub.(interface{ Snapshot() Snapshot }); ok {
			inner := sn.Snapshot()
			snap.Angles = append(snap.Angles, inner.Angles...)
			snap.Points = append(snap.Points, inner.Points...)
			continue
		}
		for _, v := range sub.Hull().Vertices() {
			snap.Angles = append(snap.Angles, 0)
			snap.Points = append(snap.Points, v)
		}
	}
	return snap
}

// NewShardedFromSnapshot rebuilds a sharded summary from a snapshot
// captured by (*ShardedHull).Snapshot, preserving the stream count N.
// Like MergeSnapshots, the restore streams the snapshot's sample points
// through a fresh summary built from the embedded Spec — deterministic,
// so checkpoint-then-recover always converges to one state — and keeps
// the two-level error of re-sampling a sample.
func NewShardedFromSnapshot(s Snapshot) (*ShardedHull, error) {
	if s.Kind != string(KindSharded) {
		return nil, fmt.Errorf("streamhull: restoring sharded summary from %q snapshot", s.Kind)
	}
	if s.Spec == nil {
		return nil, fmt.Errorf("streamhull: sharded snapshot carries no spec; cannot size the fan-out")
	}
	spec := *s.Spec
	if spec.Kind != KindSharded {
		return nil, fmt.Errorf("streamhull: sharded snapshot carries %q spec", spec.Kind)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	h, err := buildSharded(spec)
	if err != nil {
		return nil, err
	}
	if _, err := h.InsertBatch(s.Points); err != nil {
		return nil, err
	}
	if n := int64(s.N); n > h.n.Load() {
		h.n.Store(n)
	}
	return h, nil
}
