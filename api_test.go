package streamhull

import (
	"math"
	"testing"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/workload"
)

// TestAdaptiveAccessors exercises the informational API surface.
func TestAdaptiveAccessors(t *testing.T) {
	s := NewAdaptive(8, WithHeightLimit(2), WithBoundedWork(4))
	if s.R() != 8 {
		t.Errorf("R = %d", s.R())
	}
	pts := workload.Take(workload.Ellipse(1, 1, 0.2, 0.3), 5000)
	for _, p := range pts {
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	dirs := s.Directions()
	if len(dirs) < 8 {
		t.Errorf("only %d directions", len(dirs))
	}
	for i := 1; i < len(dirs); i++ {
		if dirs[i-1] >= dirs[i] {
			t.Fatalf("directions not increasing at %d", i)
		}
	}
	tris := s.Triangles()
	if len(tris) == 0 {
		t.Error("no triangles")
	}
	maxH := 0.0
	for _, tr := range tris {
		maxH = math.Max(maxH, tr.Height)
	}
	if got := s.ErrorBound(); got != maxH {
		t.Errorf("ErrorBound %v != max triangle height %v", got, maxH)
	}
	st := s.Stats()
	if st.Points != 5000 || st.GapRebuilds == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUniformAccessors(t *testing.T) {
	s := NewUniform(12)
	if got := len(s.Directions()); got != 12 {
		t.Errorf("Directions = %d", got)
	}
	if s.Triangles() != nil {
		t.Error("triangles before any point")
	}
	_ = s.Insert(geom.Pt(1, 0))
	_ = s.Insert(geom.Pt(-1, 0.5))
	if s.ErrorBound() < 0 {
		t.Error("negative error bound")
	}
	snap := s.Snapshot()
	if snap.Kind != "uniform" || len(snap.Points) != 12 {
		t.Errorf("snapshot = %+v", snap)
	}
	if s.SampleSize() != 2 {
		t.Errorf("SampleSize = %d", s.SampleSize())
	}
}

func TestFixedDirectionsSummary(t *testing.T) {
	s := NewFixedDirections([]float64{0, 1, 2, 3, 4, 5})
	pts := workload.Take(workload.Disk(2, geom.Point{}, 1), 1000)
	for _, p := range pts {
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if s.N() != 1000 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Hull().Len(); got < 3 || got > 6 {
		t.Errorf("hull has %d vertices", got)
	}
}

func TestExactHullAccessors(t *testing.T) {
	s := NewExact()
	if got := s.SampleSize(); got != 0 {
		t.Errorf("empty SampleSize = %d", got)
	}
	_ = s.Insert(geom.Pt(0, 0))
	_ = s.Insert(geom.Pt(1, 0))
	_ = s.Insert(geom.Pt(0, 1))
	_ = s.Insert(geom.Pt(0.1, 0.1))
	if got := s.SampleSize(); got != 3 {
		t.Errorf("SampleSize = %d", got)
	}
}

func TestPartialAccessors(t *testing.T) {
	s := NewPartial(8, 50, 16)
	pts := workload.Take(workload.Ellipse(3, 1, 0.1, 0.2), 200)
	for _, p := range pts {
		_ = s.Insert(p)
	}
	if !s.Frozen() {
		t.Error("not frozen")
	}
	if got := len(s.Directions()); got != 16 {
		t.Errorf("frozen directions = %d", got)
	}
	if s.ErrorBound() <= 0 {
		t.Error("no error bound")
	}
	if s.SampleSize() == 0 || s.Hull().IsEmpty() {
		t.Error("empty summary after stream")
	}
}

// TestHeightLimitTradeoff: a smaller height limit must not beat the full
// height limit on an eccentric stream (it bounds how adaptive the summary
// can get).
func TestHeightLimitTradeoff(t *testing.T) {
	pts := workload.Take(workload.Ellipse(4, 1, 1.0/64, 0.1), 30000)
	shallow := NewAdaptive(64, WithHeightLimit(1))
	deep := NewAdaptive(64) // k = log2 r = 6
	for _, p := range pts {
		_ = shallow.Insert(p)
		_ = deep.Insert(p)
	}
	if deep.ErrorBound() > shallow.ErrorBound() {
		t.Errorf("deep refinement bound %v worse than shallow %v",
			deep.ErrorBound(), shallow.ErrorBound())
	}
}
