// Package streamhull maintains small-space convex-hull summaries of
// two-dimensional point streams, implementing the adaptive sampling scheme
// of Hershberger & Suri, "Adaptive Sampling for Geometric Problems over
// Data Streams" (PODS 2004; Computational Geometry 39 (2008) 191–208).
//
// The flagship summary, NewAdaptive, processes each stream point in
// amortized O(log r) time, stores at most 2r+1 points, and guarantees that
// the true convex hull of everything ever seen lies within O(D/r²) of the
// summary's hull, where D is the stream's diameter — the provably optimal
// trade-off (§5.4). The uniform summary (NewUniform) is the classical
// Θ(D/r) baseline; NewPartial reproduces the paper's train-then-freeze
// comparator; NewExact keeps the exact hull for ground truth.
//
// Beyond the paper's lifetime summaries, two deployment-oriented modes
// build on the same machinery. The sliding-window summaries
// (NewWindowedByCount, NewWindowedByTime) cover only the recent stream —
// the last n points or the last d of wall time — via exponential-histogram
// buckets of adaptive sub-summaries, so transient extremes age out. The
// partitioned summary (NewPartitioned) shards a stream across spatial
// regions, each with its own adaptive summary, for per-region queries and
// parallel ingest.
//
// All summaries answer the extremal queries of §6 through the Polygon
// type: diameter, width, directional extent, point containment, smallest
// enclosing circle, and — across two streams — minimum distance, linear
// separability with certificates, containment, and spatial overlap.
//
// The v2 API is spec-driven and batch-first. Every summary kind is
// described by a flat, JSON-serializable Spec and constructed through
// New(Spec); summaries report their Spec back, so a running stream is
// self-describing — the HTTP server persists the spec in WAL metadata
// and crash recovery rebuilds any kind from it. Ingest prefers
// InsertBatch, which validates atomically, locks once per batch, and
// prefilters each batch to its convex-hull candidates (only a batch's
// own extreme points can change a summary). The kind-specific
// constructors (NewAdaptive, NewUniform, …) remain as thin wrappers.
//
// Summaries are safe for concurrent use.
package streamhull

import (
	"errors"
	"fmt"
	"time"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/convex"
)

// ErrNonFinite is returned when a stream point has a NaN or infinite
// coordinate.
var ErrNonFinite = errors.New("streamhull: point has non-finite coordinates")

// Summary is a single-pass summary of a point stream that can stand in
// for the stream's convex hull. Every summary kind is described by a
// Spec and constructed by New; ingest is batch-first — InsertBatch is
// the optimized path, Insert the single-point convenience.
type Summary interface {
	// Insert processes one stream point.
	Insert(p geom.Point) error
	// InsertBatch processes a batch of stream points atomically: the
	// whole batch is validated first, and on error nothing is applied
	// and 0 is returned. On success it returns len(pts). Implementations
	// take their lock once per batch and exploit the paper's core
	// observation — only the batch's own extreme points can change a
	// summary — by prefiltering the batch to its convex hull where the
	// summary's semantics allow it.
	InsertBatch(pts []geom.Point) (int, error)
	// Hull returns the summary's current convex hull.
	Hull() Polygon
	// SampleSize returns the number of points currently stored.
	SampleSize() int
	// N returns the number of stream points processed.
	N() int
	// Spec returns the serializable description this summary was built
	// from (or is equivalent to): New(s.Spec()) constructs a fresh
	// summary of the same kind and configuration. Two legacy
	// constructors escape the round trip: NewPartitioned with a custom
	// RegionFunc reports a gridless spec that New rejects, and
	// NewFixedDirections reports a uniform spec that loses the custom
	// angles — everything built through New itself round-trips exactly.
	Spec() Spec
	// Epoch returns a cheap monotone mutation counter: it advances on
	// every state change (inserts; window expiry too) and holds still
	// otherwise, so a reader can cache derived answers — the hull, its
	// diameter — and revalidate with one atomic load instead of
	// recomputing (see QueryCache). An unchanged epoch means unchanged
	// answers; the converse need not hold (an insert that adds an
	// interior point advances the epoch without moving the hull).
	// Implementations advance the counter before releasing the lock the
	// mutation held, so a Hull() call observing epoch e reflects at
	// least the mutations counted by e.
	Epoch() uint64
}

// StagedBatchInserter is implemented by summaries whose InsertBatch
// can report per-stage timings — the batch-hull prefilter vs the
// surviving insertions — to an observer. The server's request-tracing
// layer type-asserts for it on the ingest hot path; the observed call
// must apply exactly the same state transition as InsertBatch so
// traced and untraced ingest (and WAL replay) stay bit-identical.
type StagedBatchInserter interface {
	InsertBatchObserved(pts []geom.Point, obs func(stage string, d time.Duration)) (int, error)
}

// checkFinite validates a stream point.
func checkFinite(p geom.Point) error {
	if !p.IsFinite() {
		return fmt.Errorf("%w: %v", ErrNonFinite, p)
	}
	return nil
}

// checkFiniteBatch validates a whole batch before anything is applied,
// so batch ingest is atomic.
func checkFiniteBatch(pts []geom.Point) error {
	for _, p := range pts {
		if !p.IsFinite() {
			return fmt.Errorf("%w: %v", ErrNonFinite, p)
		}
	}
	return nil
}

// batchHull prefilters a batch to a superset of its convex-hull
// vertices (two linear passes, no sort — see convex.ExtremeCandidates):
// only those candidates can beat any sample direction once the whole
// batch is in, so the interior never needs to touch the summary.
func batchHull(pts []geom.Point) []geom.Point {
	return convex.ExtremeCandidates(pts)
}

// InsertAll feeds a batch of points into a summary.
//
// Deprecated: use Summary.InsertBatch, which validates the whole batch
// up front (so an error means nothing was applied) and takes the
// summary's lock once instead of per point.
func InsertAll(s Summary, pts []geom.Point) error {
	_, err := s.InsertBatch(pts)
	return err
}
