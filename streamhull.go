// Package streamhull maintains small-space convex-hull summaries of
// two-dimensional point streams, implementing the adaptive sampling scheme
// of Hershberger & Suri, "Adaptive Sampling for Geometric Problems over
// Data Streams" (PODS 2004; Computational Geometry 39 (2008) 191–208).
//
// The flagship summary, NewAdaptive, processes each stream point in
// amortized O(log r) time, stores at most 2r+1 points, and guarantees that
// the true convex hull of everything ever seen lies within O(D/r²) of the
// summary's hull, where D is the stream's diameter — the provably optimal
// trade-off (§5.4). The uniform summary (NewUniform) is the classical
// Θ(D/r) baseline; NewPartial reproduces the paper's train-then-freeze
// comparator; NewExact keeps the exact hull for ground truth.
//
// Beyond the paper's lifetime summaries, two deployment-oriented modes
// build on the same machinery. The sliding-window summaries
// (NewWindowedByCount, NewWindowedByTime) cover only the recent stream —
// the last n points or the last d of wall time — via exponential-histogram
// buckets of adaptive sub-summaries, so transient extremes age out. The
// partitioned summary (NewPartitioned) shards a stream across spatial
// regions, each with its own adaptive summary, for per-region queries and
// parallel ingest.
//
// All summaries answer the extremal queries of §6 through the Polygon
// type: diameter, width, directional extent, point containment, smallest
// enclosing circle, and — across two streams — minimum distance, linear
// separability with certificates, containment, and spatial overlap.
//
// Summaries are safe for concurrent use.
package streamhull

import (
	"errors"
	"fmt"

	"github.com/streamgeom/streamhull/geom"
)

// ErrNonFinite is returned when a stream point has a NaN or infinite
// coordinate.
var ErrNonFinite = errors.New("streamhull: point has non-finite coordinates")

// Summary is a single-pass summary of a point stream that can stand in
// for the stream's convex hull.
type Summary interface {
	// Insert processes one stream point.
	Insert(p geom.Point) error
	// Hull returns the summary's current convex hull.
	Hull() Polygon
	// SampleSize returns the number of points currently stored.
	SampleSize() int
	// N returns the number of stream points processed.
	N() int
}

// checkFinite validates a stream point.
func checkFinite(p geom.Point) error {
	if !p.IsFinite() {
		return fmt.Errorf("%w: %v", ErrNonFinite, p)
	}
	return nil
}

// insertAll feeds a batch through a Summary, stopping at the first error.
func insertAll(s Summary, pts []geom.Point) error {
	for _, p := range pts {
		if err := s.Insert(p); err != nil {
			return err
		}
	}
	return nil
}

// InsertAll feeds a batch of points into a summary in order, stopping at
// the first invalid point.
func InsertAll(s Summary, pts []geom.Point) error { return insertAll(s, pts) }
