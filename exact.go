package streamhull

import (
	"sync"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/convex"
)

// ExactHull maintains the exact convex hull of everything seen. Its
// storage is Θ(hull size), which is unbounded for adversarial streams —
// it exists as ground truth for evaluating the sampled summaries and for
// small streams where exactness is affordable.
type ExactHull struct {
	mu    sync.Mutex
	verts []geom.Point // current hull vertices
	poly  convex.Polygon
	dirty bool
	n     int
}

// NewExact returns an exact hull summary.
func NewExact() *ExactHull { return &ExactHull{} }

// Insert processes one stream point. Points inside the current hull are
// dropped immediately; hull-changing points trigger an O(h log h) re-hull
// of the at most h+1 boundary points.
func (s *ExactHull) Insert(p geom.Point) error {
	if err := checkFinite(p); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	if s.dirty {
		s.rebuild()
	}
	if s.poly.Len() >= 3 && s.poly.Contains(p) {
		return nil
	}
	s.verts = append(s.poly.Vertices(), p)
	s.dirty = true
	return nil
}

func (s *ExactHull) rebuild() {
	s.poly = convex.Hull(s.verts)
	s.verts = nil
	s.dirty = false
}

// Hull returns the exact convex hull of the stream so far.
func (s *ExactHull) Hull() Polygon {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		s.rebuild()
	}
	return Polygon{s.poly}
}

// SampleSize returns the number of stored hull vertices.
func (s *ExactHull) SampleSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		s.rebuild()
	}
	return s.poly.Len()
}

// N returns the number of stream points processed.
func (s *ExactHull) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
