package streamhull

import (
	"sync"
	"sync/atomic"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/convex"
)

// ExactHull maintains the exact convex hull of everything seen. Its
// storage is Θ(hull size), which is unbounded for adversarial streams —
// it exists as ground truth for evaluating the sampled summaries and for
// small streams where exactness is affordable.
type ExactHull struct {
	mu    sync.Mutex
	verts []geom.Point // current hull vertices
	poly  convex.Polygon
	dirty bool
	n     int
	epoch atomic.Uint64
}

// buildExact constructs an exact summary (see New).
func buildExact() *ExactHull { return &ExactHull{} }

// NewExact returns an exact hull summary.
func NewExact() *ExactHull { return buildExact() }

// Spec returns the summary's serializable description.
func (s *ExactHull) Spec() Spec { return Spec{Kind: KindExact} }

// Insert processes one stream point. Points inside the current hull are
// dropped immediately; hull-changing points trigger an O(h log h) re-hull
// of the at most h+1 boundary points.
func (s *ExactHull) Insert(p geom.Point) error {
	if err := checkFinite(p); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.insertLocked(p)
	s.epoch.Add(1)
	return nil
}

// insertLocked folds one already-validated point in. Caller holds s.mu.
func (s *ExactHull) insertLocked(p geom.Point) {
	if s.dirty {
		s.rebuild()
	}
	if s.poly.Len() >= 3 && s.poly.Contains(p) {
		return
	}
	s.verts = append(s.poly.Vertices(), p)
	s.dirty = true
}

// InsertBatch processes a batch of stream points under one lock
// acquisition, prefiltered to the batch's convex hull and re-hulled at
// most once (per-point insertion re-hulls after every boundary point).
// The batch is validated first, so an error means nothing was applied.
func (s *ExactHull) InsertBatch(pts []geom.Point) (int, error) {
	if err := checkFiniteBatch(pts); err != nil {
		return 0, err
	}
	if len(pts) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += len(pts)
	if s.dirty {
		s.rebuild()
	}
	appended := false
	for _, p := range batchHull(pts) {
		if s.poly.Len() >= 3 && s.poly.Contains(p) {
			continue
		}
		if !appended {
			s.verts = s.poly.Vertices()
			appended = true
		}
		s.verts = append(s.verts, p)
	}
	if appended {
		s.dirty = true
	}
	s.epoch.Add(1)
	return len(pts), nil
}

// Epoch returns the summary's mutation counter.
func (s *ExactHull) Epoch() uint64 { return s.epoch.Load() }

// rebuild canonicalizes pending vertices into the hull polygon. It is
// observationally pure — the hull it materializes is the one the
// pending vertices already determine — so read paths may call it
// without advancing the epoch.
//
//lint:allow epochbump lazy canonicalization changes no observable state
func (s *ExactHull) rebuild() {
	s.poly = convex.Hull(s.verts)
	s.verts = nil
	s.dirty = false
}

// Hull returns the exact convex hull of the stream so far.
func (s *ExactHull) Hull() Polygon {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		s.rebuild()
	}
	return Polygon{s.poly}
}

// SampleSize returns the number of stored hull vertices.
func (s *ExactHull) SampleSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		s.rebuild()
	}
	return s.poly.Len()
}

// N returns the number of stream points processed.
func (s *ExactHull) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
