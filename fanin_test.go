package streamhull

import (
	"errors"
	"testing"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/workload"
)

// donorSnapshot summarizes a slice of a stream with an adaptive summary
// and captures its snapshot — a follower node's contribution.
func donorSnapshot(t *testing.T, r int, pts []geom.Point) Snapshot {
	t.Helper()
	d := NewAdaptive(r)
	if _, err := d.InsertBatch(pts); err != nil {
		t.Fatalf("donor ingest: %v", err)
	}
	return d.Snapshot()
}

// samePolygon compares two hulls vertex-for-vertex (bit-exact).
func samePolygon(a, b Polygon) bool {
	va, vb := a.Vertices(), b.Vertices()
	if len(va) != len(vb) {
		return false
	}
	for i := range va {
		if va[i] != vb[i] {
			return false
		}
	}
	return true
}

// TestFanInMatchesOneShotMerge: the continuously maintained aggregate
// must converge bit-for-bit with a one-shot MergeSnapshots of the same
// inputs (fed in the same source-name order) — the mergeability argument
// the whole fan-in design rests on.
func TestFanInMatchesOneShotMerge(t *testing.T) {
	const r = 16
	pts := workload.Take(workload.Disk(3, geom.Pt(0, 0), 1), 3000)
	snapA := donorSnapshot(t, r, pts[:1000])
	snapB := donorSnapshot(t, r, pts[1000:2000])
	snapC := donorSnapshot(t, r, pts[2000:])

	agg, err := NewFanIn(r)
	if err != nil {
		t.Fatal(err)
	}
	// Pushed out of name order; the merge must not care.
	for _, p := range []struct {
		name string
		snap Snapshot
	}{{"c", snapC}, {"a", snapA}, {"b", snapB}} {
		if err := agg.Push(p.name, 1, p.snap); err != nil {
			t.Fatalf("push %s: %v", p.name, err)
		}
	}

	oneShot, err := MergeSnapshots(r, snapA, snapB, snapC) // name order a, b, c
	if err != nil {
		t.Fatal(err)
	}
	if !samePolygon(agg.Hull(), oneShot.Hull()) {
		t.Errorf("aggregate hull diverges from one-shot merge:\n  fanin  %v\n  oneshot %v",
			agg.Hull().Vertices(), oneShot.Hull().Vertices())
	}
	if got, want := agg.N(), 3000; got != want {
		t.Errorf("N = %d, want %d", got, want)
	}
	if agg.SampleSize() != oneShot.SampleSize() {
		t.Errorf("sample size %d, one-shot %d", agg.SampleSize(), oneShot.SampleSize())
	}
}

// TestFanInReSyncDropsStaleContribution: a source that crashed after
// pushing a partial snapshot is superseded by its restarted
// incarnation's higher-epoch push — the aggregate must converge to the
// same state as if the partial push never happened.
func TestFanInReSyncDropsStaleContribution(t *testing.T) {
	const r = 16
	pts := workload.Take(workload.Ellipse(7, 1, 0.25, 0.01), 2000)
	partial := donorSnapshot(t, r, pts[:100]) // killed mid-stream
	full := donorSnapshot(t, r, pts[:1000])   // restarted, fully caught up
	other := donorSnapshot(t, r, pts[1000:])

	agg, err := NewFanIn(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Push("node1", 100, partial); err != nil {
		t.Fatal(err)
	}
	if err := agg.Push("node2", 50, other); err != nil {
		t.Fatal(err)
	}
	// Restarted node1 re-syncs with a higher epoch.
	if err := agg.Push("node1", 200, full); err != nil {
		t.Fatal(err)
	}
	// A straggling duplicate of the dead incarnation's push is rejected.
	if err := agg.Push("node1", 150, partial); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale push error = %v, want ErrStaleEpoch", err)
	}

	oneShot, err := MergeSnapshots(r, full, other) // name order node1, node2
	if err != nil {
		t.Fatal(err)
	}
	if !samePolygon(agg.Hull(), oneShot.Hull()) {
		t.Error("aggregate after re-sync diverges from one-shot merge of the live inputs")
	}
	if got, want := agg.N(), 2000; got != want {
		t.Errorf("N = %d, want %d (stale contribution not dropped?)", got, want)
	}
}

func TestFanInDropSourceAndEpoch(t *testing.T) {
	agg, err := NewFanIn(8)
	if err != nil {
		t.Fatal(err)
	}
	snap := donorSnapshot(t, 8, workload.Take(workload.Disk(1, geom.Pt(0, 0), 1), 100))
	e0 := agg.Epoch()
	if err := agg.Push("a", 1, snap); err != nil {
		t.Fatal(err)
	}
	if agg.Epoch() == e0 {
		t.Error("Epoch did not advance on push")
	}
	if agg.Hull().IsEmpty() {
		t.Error("hull empty after push")
	}
	if !agg.DropSource("a") {
		t.Fatal("DropSource(a)")
	}
	if agg.DropSource("a") {
		t.Error("double drop reported true")
	}
	if !agg.Hull().IsEmpty() {
		t.Error("hull not empty after dropping the only source")
	}
	if agg.N() != 0 {
		t.Errorf("N = %d after drop", agg.N())
	}
	srcs := agg.Sources()
	if len(srcs) != 0 {
		t.Errorf("sources = %+v after drop", srcs)
	}
}

func TestFanInRejectsDirectIngest(t *testing.T) {
	agg, err := NewFanIn(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Insert(geom.Pt(1, 1)); !errors.Is(err, ErrFanInIngest) {
		t.Errorf("Insert error = %v, want ErrFanInIngest", err)
	}
	if n, err := agg.InsertBatch([]geom.Point{geom.Pt(1, 1)}); n != 0 || !errors.Is(err, ErrFanInIngest) {
		t.Errorf("InsertBatch = (%d, %v), want (0, ErrFanInIngest)", n, err)
	}
}

// TestFanInSnapshotCascades: an aggregate's own snapshot is an adaptive
// snapshot (the merged summary's), so it can be pushed one tier further
// up or restored as a plain adaptive summary.
func TestFanInSnapshotCascades(t *testing.T) {
	const r = 12
	agg, err := NewFanIn(r)
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.Take(workload.Disk(5, geom.Pt(0, 0), 2), 1000)
	if err := agg.Push("a", 1, donorSnapshot(t, r, pts[:500])); err != nil {
		t.Fatal(err)
	}
	if err := agg.Push("b", 1, donorSnapshot(t, r, pts[500:])); err != nil {
		t.Fatal(err)
	}
	snap := agg.Snapshot()
	if snap.Kind != "adaptive" {
		t.Fatalf("aggregate snapshot kind %q", snap.Kind)
	}
	if snap.N != 1000 {
		t.Errorf("aggregate snapshot N = %d, want the logical stream count 1000", snap.N)
	}
	restored, err := SummaryFromSnapshot(snap)
	if err != nil {
		t.Fatalf("restoring aggregate snapshot: %v", err)
	}
	if restored.Hull().IsEmpty() {
		t.Error("restored aggregate hull is empty")
	}
	// Cascade: push the tier-1 aggregate's snapshot into a tier-2 one.
	tier2, err := NewFanIn(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier2.Push("region-west", 1, snap); err != nil {
		t.Fatalf("cascaded push: %v", err)
	}
	if tier2.N() != 1000 {
		t.Errorf("tier-2 N = %d", tier2.N())
	}
}

func TestFanInPushValidation(t *testing.T) {
	agg, err := NewFanIn(8)
	if err != nil {
		t.Fatal(err)
	}
	bad := Snapshot{Kind: "adaptive", R: 8, N: 1, Points: []geom.Point{{X: 1, Y: geomNaN()}}}
	if err := agg.Push("a", 1, bad); err == nil {
		t.Error("push accepted a non-finite point")
	}
	if err := agg.Push("", 1, Snapshot{}); err == nil {
		t.Error("push accepted an empty source name")
	}
}

func geomNaN() float64 {
	var zero float64
	return zero / zero
}
