package streamhull

import (
	"math"
	"testing"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/workload"
)

func TestPartitionedBasics(t *testing.T) {
	assign, n := GridRegions(2, 1, -10, -10, 10, 10)
	if n != 2 {
		t.Fatalf("regions = %d", n)
	}
	s := NewPartitioned(n, assign, 8)

	left := workload.Take(workload.Disk(1, geom.Pt(-5, 0), 1), 3000)
	right := workload.Take(workload.Disk(2, geom.Pt(5, 0), 1), 3000)
	for i := range left {
		if err := s.Insert(left[i]); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(right[i]); err != nil {
			t.Fatal(err)
		}
	}
	if s.N() != 6000 {
		t.Errorf("N = %d", s.N())
	}
	if s.RegionN(0) != 3000 || s.RegionN(1) != 3000 {
		t.Errorf("region counts %d/%d", s.RegionN(0), s.RegionN(1))
	}

	// Each region hull covers its own disk, not the other.
	h0 := s.RegionHull(0)
	if !h0.Contains(geom.Pt(-5, 0)) || h0.Contains(geom.Pt(5, 0)) {
		t.Error("region 0 hull wrong")
	}
	// The global hull spans both clusters; a single-cluster hull would
	// also cover the empty middle — per-region hulls do not.
	global := s.Hull()
	if !global.Contains(geom.Pt(0, 0)) {
		t.Error("global hull should cover the middle")
	}
	mid := geom.Pt(0, 0)
	if h0.Contains(mid) || s.RegionHull(1).Contains(mid) {
		t.Error("per-region hulls must expose the gap between clusters")
	}

	// Closest pair of regions ≈ distance between the inner disk edges.
	i, j, d, ok := s.ClosestRegions()
	if !ok || i == j {
		t.Fatalf("ClosestRegions = %d,%d,%v", i, j, ok)
	}
	if math.Abs(d-8) > 0.3 {
		t.Errorf("closest region distance %v, want ≈ 8", d)
	}

	// Sample budget: each region obeys its own 2r+1 bound.
	if s.SampleSize() > 2*(2*8+1) {
		t.Errorf("total sample size %d", s.SampleSize())
	}
}

func TestPartitionedValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero regions", func() { NewPartitioned(0, func(geom.Point) int { return 0 }, 8) })
	mustPanic("nil assign", func() { NewPartitioned(1, nil, 8) })
	mustPanic("bad grid", func() { GridRegions(0, 1, 0, 0, 1, 1) })

	s := NewPartitioned(2, func(geom.Point) int { return 7 }, 8)
	if err := s.Insert(geom.Pt(0, 0)); err == nil {
		t.Error("out-of-range region accepted")
	}
	if err := s.Insert(geom.Pt(math.NaN(), 0)); err == nil {
		t.Error("NaN accepted")
	}
}

func TestGridRegionsClamping(t *testing.T) {
	assign, n := GridRegions(3, 3, 0, 0, 3, 3)
	if n != 9 {
		t.Fatalf("n = %d", n)
	}
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(0.5, 0.5), 0},
		{geom.Pt(2.5, 2.5), 8},
		{geom.Pt(-100, -100), 0}, // clamped
		{geom.Pt(100, 100), 8},   // clamped
		{geom.Pt(1.5, 0.5), 1},
		{geom.Pt(0.5, 1.5), 3},
	}
	for _, c := range cases {
		if got := assign(c.p); got != c.want {
			t.Errorf("assign(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPartitionedEmptyRegions(t *testing.T) {
	s := NewPartitioned(4, func(p geom.Point) int { return 0 }, 8)
	if _, _, _, ok := s.ClosestRegions(); ok {
		t.Error("ClosestRegions on empty summary")
	}
	_ = s.Insert(geom.Pt(1, 1))
	if _, _, _, ok := s.ClosestRegions(); ok {
		t.Error("ClosestRegions with one region")
	}
	idx, hulls := s.Hulls()
	if len(idx) != 1 || len(hulls) != 1 {
		t.Errorf("Hulls = %v", idx)
	}
	if s.Hull().Len() != 1 {
		t.Errorf("global hull = %d vertices", s.Hull().Len())
	}
}
