package streamhull

import (
	"strings"
	"testing"
	"time"

	"github.com/streamgeom/streamhull/geom"
	"github.com/streamgeom/streamhull/internal/workload"
)

// validSpecs is one constructible Spec per kind, shared by the
// construction, round-trip and fuzz-seed tests.
func validSpecs() []Spec {
	return []Spec{
		{Kind: KindAdaptive, R: 16},
		{Kind: KindAdaptive, R: 16, HeightLimit: 2, FixedBudget: 32, BoundedWork: 4},
		{Kind: KindUniform, R: 12},
		{Kind: KindExact},
		{Kind: KindPartial, R: 8, TrainN: 100, FixedBudget: 16},
		{Kind: KindWindowed, R: 8, Window: "500"},
		{Kind: KindWindowed, R: 8, Window: "30s"},
		{Kind: KindPartitioned, R: 8,
			Grid: &GridSpec{Cols: 2, Rows: 3, MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}},
		{Kind: KindSharded, Shards: 4, Inner: &Spec{Kind: KindAdaptive, R: 16}},
		{Kind: KindSharded, Shards: 2, Inner: &Spec{Kind: KindExact}},
		{Kind: KindFanIn, R: 16},
	}
}

// feedSummary ingests pts through the interface: fan-in aggregates are
// fed by snapshot pushes (direct ingest is an error by design), every
// other kind through InsertBatch.
func feedSummary(t *testing.T, sum Summary, pts []geom.Point) {
	t.Helper()
	if agg, ok := sum.(*FanInHull); ok {
		if _, err := sum.InsertBatch(pts); err != ErrFanInIngest {
			t.Fatalf("fanin: InsertBatch error = %v, want ErrFanInIngest", err)
		}
		donor := NewAdaptive(agg.Spec().R)
		if _, err := donor.InsertBatch(pts); err != nil {
			t.Fatalf("fanin: donor ingest: %v", err)
		}
		if err := agg.Push("spec-test", 1, donor.Snapshot()); err != nil {
			t.Fatalf("fanin: push: %v", err)
		}
		return
	}
	if n, err := sum.InsertBatch(pts); err != nil || n != len(pts) {
		t.Fatalf("%s: InsertBatch = (%d, %v)", sum.Spec().Kind, n, err)
	}
}

// TestNewConstructsAllKinds: New builds every kind, the summary reports
// the spec it was built from, and the spec round-trips through JSON.
func TestNewConstructsAllKinds(t *testing.T) {
	kinds := map[Kind]bool{}
	for _, spec := range validSpecs() {
		sum, err := New(spec)
		if err != nil {
			t.Fatalf("New(%s): %v", spec, err)
		}
		kinds[spec.Kind] = true
		if got := sum.Spec(); !equalSpec(got, spec) {
			t.Errorf("New(%s).Spec() = %s", spec, got)
		}
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", spec, err)
		}
		if !equalSpec(back, spec) {
			t.Errorf("round trip %s → %s", spec, back)
		}
		// Every kind must ingest and answer queries through the interface
		// (fan-in aggregates via snapshot push, their only write path).
		pts := workload.Take(workload.Disk(9, geom.Pt(0.5, 0.5), 0.4), 200)
		feedSummary(t, sum, pts)
		if sum.N() != 200 {
			t.Errorf("%s: N = %d after 200 points", spec.Kind, sum.N())
		}
		if sum.Hull().IsEmpty() {
			t.Errorf("%s: empty hull after 200 points", spec.Kind)
		}
		if sum.SampleSize() <= 0 {
			t.Errorf("%s: sample size %d", spec.Kind, sum.SampleSize())
		}
	}
	if len(kinds) != len(Kinds()) {
		t.Errorf("constructed %d kinds, want %d", len(kinds), len(Kinds()))
	}
}

// TestSpecValidationErrors: malformed kinds, bad parameters and
// conflicting cross-kind fields must all error (and never panic).
func TestSpecValidationErrors(t *testing.T) {
	grid := &GridSpec{Cols: 2, Rows: 2, MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	cases := []struct {
		name string
		spec Spec
	}{
		{"no kind", Spec{R: 16}},
		{"unknown kind", Spec{Kind: "wizard", R: 16}},
		{"adaptive r too small", Spec{Kind: KindAdaptive, R: 3}},
		{"adaptive negative r", Spec{Kind: KindAdaptive, R: -16}},
		{"uniform r too small", Spec{Kind: KindUniform, R: 2}},
		{"exact with r", Spec{Kind: KindExact, R: 16}},
		{"negative height", Spec{Kind: KindAdaptive, R: 16, HeightLimit: -1}},
		{"budget below r", Spec{Kind: KindAdaptive, R: 16, FixedBudget: 8}},
		{"negative bounded work", Spec{Kind: KindAdaptive, R: 16, BoundedWork: -2}},
		{"height on uniform", Spec{Kind: KindUniform, R: 12, HeightLimit: 2}},
		{"budget on windowed", Spec{Kind: KindWindowed, R: 8, Window: "10", FixedBudget: 16}},
		{"train_n on adaptive", Spec{Kind: KindAdaptive, R: 16, TrainN: 10}},
		{"partial without train_n", Spec{Kind: KindPartial, R: 8}},
		{"windowed without window", Spec{Kind: KindWindowed, R: 8}},
		{"windowed bad window", Spec{Kind: KindWindowed, R: 8, Window: "soon"}},
		{"windowed zero window", Spec{Kind: KindWindowed, R: 8, Window: "0"}},
		{"windowed negative duration", Spec{Kind: KindWindowed, R: 8, Window: "-5s"}},
		{"window on adaptive", Spec{Kind: KindAdaptive, R: 16, Window: "100"}},
		{"window and grid conflict", Spec{Kind: KindWindowed, R: 8, Window: "100", Grid: grid}},
		{"grid on windowed kindless window", Spec{Kind: KindPartitioned, R: 8, Window: "100", Grid: grid}},
		{"partitioned without grid", Spec{Kind: KindPartitioned, R: 8}},
		{"empty grid", Spec{Kind: KindPartitioned, R: 8,
			Grid: &GridSpec{Cols: 2, Rows: 2, MinX: 1, MinY: 0, MaxX: 0, MaxY: 1}}},
		{"zero grid cells", Spec{Kind: KindPartitioned, R: 8,
			Grid: &GridSpec{Cols: 0, Rows: 2, MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}},
		{"sharded without inner", Spec{Kind: KindSharded, Shards: 4}},
		{"sharded without shards", Spec{Kind: KindSharded, Inner: &Spec{Kind: KindAdaptive, R: 16}}},
		{"sharded with own r", Spec{Kind: KindSharded, R: 16, Shards: 4, Inner: &Spec{Kind: KindAdaptive, R: 16}}},
		{"sharded too wide", Spec{Kind: KindSharded, Shards: MaxShards + 1, Inner: &Spec{Kind: KindAdaptive, R: 16}}},
		{"sharded windowed inner", Spec{Kind: KindSharded, Shards: 4, Inner: &Spec{Kind: KindWindowed, R: 8, Window: "100"}}},
		{"sharded nested sharded", Spec{Kind: KindSharded, Shards: 2,
			Inner: &Spec{Kind: KindSharded, Shards: 2, Inner: &Spec{Kind: KindAdaptive, R: 16}}}},
		{"sharded invalid inner", Spec{Kind: KindSharded, Shards: 4, Inner: &Spec{Kind: KindAdaptive, R: 2}}},
		{"shards on adaptive", Spec{Kind: KindAdaptive, R: 16, Shards: 4}},
		{"inner on adaptive", Spec{Kind: KindAdaptive, R: 16, Inner: &Spec{Kind: KindAdaptive, R: 16}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %s", c.name, c.spec)
		}
		if _, err := New(c.spec); err == nil {
			t.Errorf("%s: New accepted %s", c.name, c.spec)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"", "null", "42", `"adaptive"`, "[]", "not json",
		`{"kind":"adaptive","r":16} trailing`,
		`{"kind":"adaptive","r":16,"bogus":1}`, // unknown field
		`{"kind":"adaptive","r":1e300}`,        // overflowing int
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

// TestSpecFor covers the legacy flag → Spec bridge.
func TestSpecFor(t *testing.T) {
	if s, err := SpecFor("", 32, ""); err != nil || s.Kind != KindAdaptive || s.R != 32 {
		t.Errorf("SpecFor default = %v, %v", s, err)
	}
	if s, err := SpecFor("exact", 32, ""); err != nil || s.Kind != KindExact || s.R != 0 {
		t.Errorf("SpecFor exact = %v, %v (r must be dropped)", s, err)
	}
	if s, err := SpecFor("adaptive", 16, "30s"); err != nil || s.Kind != KindWindowed || s.Window != "30s" {
		t.Errorf("SpecFor windowed = %v, %v", s, err)
	}
	for _, bad := range [][3]string{
		{"uniform", "16", "100"}, {"wizard", "16", ""}, {"windowed", "16", ""},
	} {
		if _, err := SpecFor(bad[0], 16, bad[2]); err == nil {
			t.Errorf("SpecFor(%q, window=%q) accepted", bad[0], bad[2])
		}
	}
}

// TestConstructorsAreSpecWrappers: the v1 constructors produce summaries
// whose Spec round-trips through New.
func TestConstructorsAreSpecWrappers(t *testing.T) {
	sums := []Summary{
		NewAdaptive(16, WithHeightLimit(3), WithFixedBudget(32)),
		NewUniform(12),
		NewExact(),
		NewPartial(8, 50, 16),
		NewWindowedByCount(8, 500),
		NewWindowedByTime(8, 90*time.Minute, nil),
	}
	for _, sum := range sums {
		spec := sum.Spec()
		rebuilt, err := New(spec)
		if err != nil {
			t.Fatalf("New(%s): %v", spec, err)
		}
		if !equalSpec(rebuilt.Spec(), spec) {
			t.Errorf("rebuild of %s reports %s", spec, rebuilt.Spec())
		}
	}
	// A custom RegionFunc has no spec representation; its gridless spec
	// must be rejected by New, not silently misbuilt.
	p := NewPartitioned(4, func(geom.Point) int { return 0 }, 8)
	if _, err := New(p.Spec()); err == nil {
		t.Error("New accepted the gridless spec of a custom-RegionFunc partition")
	}
}

// TestSnapshotRestoreRejectsOversizedR: snapshots are untrusted input
// (HTTP restore, on-disk checkpoints); an absurd r must error, never
// panic the constructors' validation.
func TestSnapshotRestoreRejectsOversizedR(t *testing.T) {
	for _, snap := range []Snapshot{
		{Kind: "adaptive", R: MaxR + 1},
		{Kind: "uniform", R: MaxR + 1},
	} {
		if _, err := SummaryFromSnapshot(snap); err == nil {
			t.Errorf("%s snapshot with r = %d accepted", snap.Kind, snap.R)
		}
	}
	// The v1 binary path carries r as a raw uint32 with no range check;
	// the restore layer must still reject it gracefully.
	data, err := Snapshot{Kind: "uniform", R: 1 << 24}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if _, err := SummaryFromSnapshot(back); err == nil {
		t.Error("binary snapshot with oversized r accepted")
	}
}

// TestCheckpointKindMismatchFailsLoudly: a checkpoint whose kind
// disagrees with the stream meta must abort recovery, not silently
// build the wrong summary.
func TestCheckpointKindMismatchFailsLoudly(t *testing.T) {
	u := NewUniform(8)
	_ = u.Insert(geom.Pt(1, 2))
	data, err := u.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SummaryFromCheckpoint(Spec{Kind: KindAdaptive, R: 8}, data); err == nil {
		t.Error("uniform checkpoint accepted for an adaptive stream")
	}
}

// FuzzParseSpec: any input either errors or yields a spec that is
// constructible, re-serializable, and stable across one round trip.
// Never panics.
func FuzzParseSpec(f *testing.F) {
	for _, spec := range validSpecs() {
		f.Add(spec.String())
	}
	f.Add(`{"kind":"wizard","r":16}`)
	f.Add(`{"kind":"adaptive","r":-4}`)
	f.Add(`{"kind":"windowed","r":8,"window":"100","grid":{"cols":1,"rows":1,"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`)
	f.Add(`{"kind":"partitioned","r":8,"window":"100"}`)
	f.Add(`{"kind":"windowed","r":8,"window":"9999999999999999999999"}`)
	f.Add(`{"kind":"exact","height_limit":1}`)
	f.Add("{")
	f.Add(strings.Repeat("[", 64))
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		sum, err := New(spec)
		if err != nil {
			t.Fatalf("validated spec %s failed to construct: %v", spec, err)
		}
		if !equalSpec(sum.Spec(), spec) {
			t.Fatalf("summary reports %s for spec %s", sum.Spec(), spec)
		}
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse of %s: %v", spec, err)
		}
		if !equalSpec(back, spec) {
			t.Fatalf("round trip %s → %s", spec, back)
		}
	})
}
